#include "db/journal.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace sphinx::db {
namespace {

/// Escapes tabs/newlines/backslashes so records stay line-oriented.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

Expected<std::string> unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return make_error("journal_parse", "dangling escape");
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: return make_error("journal_parse", "unknown escape");
    }
  }
  return out;
}

/// Serializes a value as "type:payload".
std::string encode_value(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "n:";
    case ValueType::kInt: return "i:" + std::to_string(v.as_int());
    case ValueType::kReal: {
      std::ostringstream oss;
      oss.precision(17);
      oss << v.as_real();
      return "r:" + oss.str();
    }
    case ValueType::kText: return "s:" + escape(v.as_text());
    case ValueType::kBool: return std::string("b:") + (v.as_bool() ? "1" : "0");
  }
  return "n:";
}

Expected<Value> decode_value(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return make_error("journal_parse", "bad value encoding: " + s);
  }
  const std::string payload = s.substr(2);
  switch (s[0]) {
    case 'n': return Value();
    case 'i': {
      try {
        return Value(static_cast<std::int64_t>(std::stoll(payload)));
      } catch (const std::exception&) {
        return make_error("journal_parse", "bad int: " + payload);
      }
    }
    case 'r': {
      try {
        return Value(std::stod(payload));
      } catch (const std::exception&) {
        return make_error("journal_parse", "bad real: " + payload);
      }
    }
    case 's': {
      auto text = unescape(payload);
      if (!text) return Unexpected<Error>{text.error()};
      return Value(std::move(*text));
    }
    case 'b': return Value(payload == "1");
    default: return make_error("journal_parse", "unknown value tag");
  }
}

Expected<ValueType> decode_type(const std::string& s) {
  if (s == "null") return ValueType::kNull;
  if (s == "int") return ValueType::kInt;
  if (s == "real") return ValueType::kReal;
  if (s == "text") return ValueType::kText;
  if (s == "bool") return ValueType::kBool;
  return make_error("journal_parse", "unknown column type: " + s);
}

}  // namespace

std::string Journal::serialize() const {
  std::string out;
  for (const JournalEntry& e : entries_) {
    std::vector<std::string> fields;
    switch (e.op) {
      case JournalEntry::Op::kCreateTable: {
        fields = {"C", escape(e.table)};
        for (const Column& col : e.schema) {
          // A trailing '!' marks an indexed column, so recovery rebuilds
          // the same hash indexes the original schema declared.
          fields.push_back(escape(col.name) + "=" + to_string(col.type) +
                           (col.indexed ? "!" : ""));
        }
        break;
      }
      case JournalEntry::Op::kInsert: {
        fields = {"I", escape(e.table), std::to_string(e.row)};
        for (const Value& v : e.cells) fields.push_back(encode_value(v));
        break;
      }
      case JournalEntry::Op::kUpdate: {
        fields = {"U", escape(e.table), std::to_string(e.row),
                  std::to_string(e.column), encode_value(e.cells.at(0))};
        break;
      }
      case JournalEntry::Op::kErase: {
        fields = {"E", escape(e.table), std::to_string(e.row)};
        break;
      }
    }
    out += join(fields, "\t");
    out += '\n';
  }
  return out;
}

Expected<Journal> Journal::parse(const std::string& text) {
  Journal journal;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 2) {
      return make_error("journal_parse", "short record: " + line);
    }
    JournalEntry entry;
    auto table = unescape(fields[1]);
    if (!table) return Unexpected<Error>{table.error()};
    entry.table = std::move(*table);

    const std::string& op = fields[0];
    if (op == "C") {
      entry.op = JournalEntry::Op::kCreateTable;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const auto eq = fields[i].rfind('=');
        if (eq == std::string::npos) {
          return make_error("journal_parse", "bad column spec: " + fields[i]);
        }
        auto name = unescape(fields[i].substr(0, eq));
        if (!name) return Unexpected<Error>{name.error()};
        std::string type_text = fields[i].substr(eq + 1);
        const bool is_indexed = !type_text.empty() && type_text.back() == '!';
        if (is_indexed) type_text.pop_back();
        auto type = decode_type(type_text);
        if (!type) return Unexpected<Error>{type.error()};
        entry.schema.push_back(Column{std::move(*name), *type, is_indexed});
      }
    } else if (op == "I") {
      if (fields.size() < 3) return make_error("journal_parse", "short insert");
      entry.op = JournalEntry::Op::kInsert;
      entry.row = std::stoull(fields[2]);
      for (std::size_t i = 3; i < fields.size(); ++i) {
        auto v = decode_value(fields[i]);
        if (!v) return Unexpected<Error>{v.error()};
        entry.cells.push_back(std::move(*v));
      }
    } else if (op == "U") {
      if (fields.size() != 5) return make_error("journal_parse", "bad update");
      entry.op = JournalEntry::Op::kUpdate;
      entry.row = std::stoull(fields[2]);
      entry.column = std::stoull(fields[3]);
      auto v = decode_value(fields[4]);
      if (!v) return Unexpected<Error>{v.error()};
      entry.cells.push_back(std::move(*v));
    } else if (op == "E") {
      if (fields.size() != 3) return make_error("journal_parse", "bad erase");
      entry.op = JournalEntry::Op::kErase;
      entry.row = std::stoull(fields[2]);
    } else {
      return make_error("journal_parse", "unknown op: " + op);
    }
    journal.append(std::move(entry));
  }
  return journal;
}

}  // namespace sphinx::db
