# Empty compiler generated dependencies file for fig5_algorithms_120.
# This may be replaced when dependencies are built.
