#pragma once
/// \file bench_common.hpp
/// Shared setup for the figure-reproduction benches.
///
/// Every fig*_ binary reproduces one table/figure from the paper's
/// section 4 on the same Grid3-like scenario: site failures and
/// background load enabled, 5-minute monitoring with 30 s reporting
/// latency, the section 4.2 workload (10-job random DAGs, 2-3 inputs,
/// 60 s compute).  Absolute numbers differ from the paper (its testbed
/// was the live Grid3); the *shape* of each figure is the target.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace sphinx::bench {

/// The defaults every figure uses.
[[nodiscard]] inline exp::ExperimentConfig paper_config(int dag_count,
                                                        std::uint64_t seed = 20050404) {
  exp::ExperimentConfig config;
  config.scenario.seed = seed;
  config.scenario.site_failures = true;
  config.scenario.background_load = true;
  // Era-faithful monitoring: infrequent query jobs, slow reporting
  // pipeline, noticeable inaccuracy (paper section 2: "stale information
  // or lack of accuracy or details necessary for effective scheduling").
  config.scenario.monitor.poll_period = minutes(20);
  config.scenario.monitor.report_latency = minutes(2);
  config.scenario.monitor.noise = 0.5;
  config.dag_count = dag_count;
  config.horizon = hours(48);
  return config;
}

inline void print_header(const std::string& figure, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("%s -- %s\n", figure.c_str(), what.c_str());
  std::printf("=============================================================\n");
}

inline void print_results(const std::string& figure,
                          const std::vector<exp::TenantResult>& results,
                          bool with_exec_idle) {
  std::printf("%s", exp::render_dag_completion(
                        "\nAverage DAG completion time (s):", results)
                        .c_str());
  if (with_exec_idle) {
    std::printf("\n%s", exp::render_exec_idle(
                            "Average job execution and idle time (s):", results)
                            .c_str());
  }
  std::printf("\nRun summary:\n%s\n", exp::render_summary(results).c_str());
  (void)figure;
}

}  // namespace sphinx::bench
