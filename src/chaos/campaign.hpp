#pragma once
/// \file campaign.hpp
/// The chaos-campaign engine: seeded fault-injection sweeps with
/// crash-recovery differential oracles.
///
/// One chaos *run* is a pair of simulations sharing a seed: the chaotic
/// run executes a synthesized ChaosSchedule (scheduled site outages plus
/// mid-run server fail-stop + journal recovery), the baseline run
/// executes the identical outage schedule uninterrupted.  Crash recovery
/// is supposed to be semantically invisible, so the chaotic run's
/// terminal warehouse state and trace (minus the harness's own crash
/// markers) must match the baseline byte-for-byte -- that is the
/// differential oracle; invariant oracles judge each run on its own.
///
/// A *campaign* fans runs out over exp::run_parallel, combines their
/// digests deterministically, and on the first failing run auto-shrinks
/// the schedule (see minimize.hpp) into a ReproCase that serializes to
/// `chaos_repro.json` and replays exactly via tools/chaos/sphinx_chaos.

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "chaos/schedule.hpp"
#include "common/error.hpp"
#include "common/time.hpp"
#include "core/state.hpp"

namespace sphinx::chaos {

/// Everything one chaos run needs (and everything a repro must pin).
struct ChaosRunConfig {
  std::uint64_t seed = 1;
  ScheduleConfig schedule;  ///< synthesis knobs (ignored on replay)
  int dag_count = 3;
  int jobs_per_dag = 6;
  core::Algorithm algorithm = core::Algorithm::kCompletionTime;
  SimTime horizon = hours(24);
  bool background_load = false;
  /// Server checkpoint policy: checkpoint + compact every this many
  /// journal records.  On by default -- checkpointed recovery is the
  /// production configuration, so it is what campaigns exercise; set 0
  /// for the legacy full-replay configuration (mid-checkpoint crash
  /// points then never fire and block any later points in the chain).
  std::size_t checkpoint_every = 64;
  /// Straggler defense: race speculative replicas against detected
  /// stragglers (ServerConfig::speculate).  Chaos campaigns with this on
  /// prove the races stay journal-replayable under crashes and lossy
  /// wires.
  bool speculate = false;
  /// Test hook: perturb the warehouse right after each recovery so the
  /// differential oracle genuinely fails (exercises minimize + repro).
  bool inject_divergence = false;
};

/// Verdict + artifacts digest of one chaotic/baseline pair.
struct ChaosRunResult {
  std::uint64_t seed = 0;
  ChaosSchedule schedule;
  OracleReport invariants;    ///< chaotic run judged on its own
  OracleReport differential;  ///< chaotic vs baseline
  std::uint64_t digest = 0;   ///< FNV over the chaotic run's artifacts
  std::size_t crashes_executed = 0;
  /// Speculative replicas the chaotic run launched (straggler defense;
  /// 0 unless the run had ChaosRunConfig::speculate on).
  std::size_t speculations = 0;
  /// Chaotic run's total journal records ever appended (next_seq) --
  /// crash thresholds are expressed in this unit.
  std::size_t journal_records = 0;
  /// Records actually retained at end of run (== journal_records with
  /// checkpointing off; the live suffix after the last compaction with
  /// it on).
  std::size_t journal_live_records = 0;

  [[nodiscard]] bool ok() const noexcept {
    return invariants.ok && differential.ok;
  }
  /// First violation ("" when ok()).
  [[nodiscard]] const std::string& violation() const noexcept {
    return invariants.ok ? differential.violation : invariants.violation;
  }
};

/// Synthesizes the run's schedule from its seed (testbed site names).
[[nodiscard]] ChaosSchedule synthesize_schedule(const ChaosRunConfig& config);

/// Runs the chaotic run and its uninterrupted baseline, applies every
/// oracle, and digests the chaotic artifacts.  Deterministic: same
/// (config, schedule) in, byte-identical result out.
[[nodiscard]] ChaosRunResult run_chaos_pair(const ChaosRunConfig& config,
                                            const ChaosSchedule& schedule);

/// A minimized, replayable failure.
struct ReproCase {
  ChaosRunConfig config;
  ChaosSchedule schedule;
  std::string violation;
};

/// Campaign-level configuration.  Run i uses seed `base.seed + i`.
struct CampaignConfig {
  ChaosRunConfig base;
  int runs = 10;
  unsigned max_threads = 0;  ///< 0 = hardware concurrency
  /// Shrink the first failing run's schedule into `repro` (slow: each
  /// minimization step replays the run pair).
  bool minimize_failures = true;
};

/// Campaign verdict.  `digest` combines per-run digests in input order,
/// so two invocations of the same campaign must report the same value.
struct CampaignResult {
  int runs = 0;
  int failures = 0;
  std::uint64_t digest = 0;
  std::vector<ChaosRunResult> results;  ///< per run, input order
  /// Minimized repro of the first failing run (when any failed and
  /// minimization is on).
  std::vector<ReproCase> repros;
};

[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

/// Straggler-defense A/B probe: one degraded-heavy outage schedule, two
/// runs sharing seed + schedule -- speculation OFF vs ON.  The arms see
/// byte-identical grids, workloads and fault draws, so every difference
/// in tail latency is the defense's doing.
struct StragglerProbeConfig {
  std::uint64_t seed = 1;
  /// Synthesis knobs; start from straggler_schedule_defaults().
  ScheduleConfig schedule;
  int dag_count = 6;
  int jobs_per_dag = 6;
  core::Algorithm algorithm = core::Algorithm::kCompletionTime;
  SimTime horizon = hours(24);
  Duration job_timeout = minutes(20);
};

/// One arm (speculation off or on) of the probe.
struct StragglerArmResult {
  bool speculate = false;
  std::size_t dags_total = 0;
  std::size_t dags_finished = 0;
  /// Completion time of every finished DAG, submission order.
  std::vector<double> dag_completions;
  std::size_t timeouts = 0;      ///< tracker-initiated cancellations
  std::size_t speculations = 0;  ///< replicas launched (ON arm only)
  std::size_t won_primary = 0;
  std::size_t won_spec = 0;
  std::size_t stale_skips = 0;   ///< detector declined: monitoring stale
  std::uint64_t digest = 0;      ///< FNV over trace + journal (determinism)
};

struct StragglerProbeResult {
  std::uint64_t seed = 0;
  StragglerArmResult off;
  StragglerArmResult on;
};

/// The degraded-heavy synthesis knobs the straggler gate uses: long
/// black-hole/degraded outages across several sites, no server crashes,
/// a mild lossy-wire window, no partitions.
[[nodiscard]] ScheduleConfig straggler_schedule_defaults();

/// Runs both arms on the synthesized schedule.  Deterministic: same
/// config in, byte-identical result out.
[[nodiscard]] StragglerProbeResult run_straggler_probe(
    const StragglerProbeConfig& config);

/// `chaos_repro.json` round-trip.
[[nodiscard]] std::string to_json(const ReproCase& repro);
[[nodiscard]] Expected<ReproCase> repro_from_json(const std::string& text);

/// Replays a repro exactly (explicit schedule, no synthesis).
[[nodiscard]] ChaosRunResult replay(const ReproCase& repro);

}  // namespace sphinx::chaos
