#include "db/database.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "db/encoding.hpp"

namespace sphinx::db {

Database::Database() = default;
Database::~Database() = default;

Table& Database::create_table(const std::string& name, Schema schema) {
  SPHINX_ASSERT(!tables_.contains(name), "table already exists: " + name);
  if (journaling_) {
    JournalEntry entry;
    entry.op = JournalEntry::Op::kCreateTable;
    entry.table = name;
    entry.schema = schema.columns();
    journal_.append(std::move(entry));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_observer(this);
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  creation_order_.push_back(name);
  return ref;
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const noexcept {
  return tables_.contains(name);
}

std::vector<std::string> Database::table_names() const {
  return creation_order_;
}

StatusOrError Database::recover(const Journal& journal,
                                std::uint64_t from_seq) {
  if (from_seq == 0 && !tables_.empty()) {
    return make_error("recover_nonempty",
                      "recover() requires an empty database");
  }
  if (journal.base_seq() > from_seq) {
    // The journal was compacted past the requested start: the dropped
    // prefix only survives inside the checkpoint image that truncated
    // it, so the caller must recover through that image.
    return make_error("recover_suffix",
                      "journal starts past the requested sequence; "
                      "recover through the matching checkpoint image");
  }
  // Replay with journaling suspended: instead of re-recording every
  // operation through the observer path one entry at a time, the
  // replayed suffix is adopted wholesale below -- byte-identical to the
  // crashed journal's retained entries.
  const bool was_journaling = journaling_;
  journaling_ = false;
  const auto fail = [&](const std::string& what) {
    journaling_ = was_journaling;
    return make_error("recover_replay", what);
  };
  std::uint64_t seq = journal.base_seq();
  for (const JournalEntry& e : journal.entries()) {
    // Entries below from_seq are already folded into the restored
    // snapshot (recovery after a crash between checkpoint publication
    // and truncation sees them still in the journal).
    if (seq++ < from_seq) continue;
    switch (e.op) {
      case JournalEntry::Op::kCreateTable: {
        if (tables_.contains(e.table)) {
          return fail("duplicate table: " + e.table);
        }
        create_table(e.table, Schema(e.schema));
        break;
      }
      case JournalEntry::Op::kInsert: {
        if (!tables_.contains(e.table)) {
          return fail("insert into missing table");
        }
        table(e.table).insert_with_id(e.row, e.cells);
        break;
      }
      case JournalEntry::Op::kUpdate: {
        if (!tables_.contains(e.table) ||
            !table(e.table).update(e.row, e.column, e.cells.at(0))) {
          return fail("update of missing row");
        }
        break;
      }
      case JournalEntry::Op::kErase: {
        if (!tables_.contains(e.table) || !table(e.table).erase(e.row)) {
          return fail("erase of missing row");
        }
        break;
      }
    }
  }
  journaling_ = was_journaling;
  journal_.adopt_suffix(journal, from_seq);
  check_invariants();  // a replayed store must be as sound as the original
  return {};
}

std::string Database::snapshot() const {
  std::string out = "#db\t1\n";
  for (const std::string& name : creation_order_) {
    const Table& t = *tables_.at(name);
    out += "T\t";
    out += escape_field(name);
    out += '\t';
    out += std::to_string(t.next_id());
    for (const Column& col : t.schema().columns()) {
      out += '\t';
      out += encode_column(col);
    }
    out += '\n';
    t.for_each([&out](const Row& row) {
      out += "R\t";
      out += std::to_string(row.id);
      for (const Value& v : row.cells) {
        out += '\t';
        out += encode_value(v);
      }
      out += '\n';
    });
  }
  return out;
}

StatusOrError Database::restore(const std::string& snapshot) {
  if (!tables_.empty()) {
    return make_error("restore_nonempty",
                      "restore() requires an empty database");
  }
  // Snapshot application is not a mutation history: nothing it does may
  // reach the journal.
  const bool was_journaling = journaling_;
  journaling_ = false;
  const auto fail = [&](const std::string& what) {
    journaling_ = was_journaling;
    return make_error("restore_parse", what);
  };

  Table* current = nullptr;
  RowId pending_next_id = kInvalidRow;
  const auto finish_table = [&] {
    // The allocation cursor is applied after the rows: restore_next_id
    // only moves forward, and the inserts advanced it to max(id)+1.
    if (current != nullptr && pending_next_id != kInvalidRow) {
      current->restore_next_id(pending_next_id);
    }
  };

  std::istringstream in(snapshot);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, '\t');
    if (!saw_header) {
      if (fields.size() != 2 || fields[0] != "#db" || fields[1] != "1") {
        return fail("bad snapshot header: " + line);
      }
      saw_header = true;
      continue;
    }
    if (fields[0] == "T") {
      if (fields.size() < 3) return fail("short table record: " + line);
      finish_table();
      auto name = unescape_field(fields[1]);
      if (!name) return fail(name.error().to_string());
      if (tables_.contains(*name)) return fail("duplicate table: " + *name);
      std::vector<Column> columns;
      for (std::size_t i = 3; i < fields.size(); ++i) {
        auto column = decode_column(fields[i]);
        if (!column) return fail(column.error().to_string());
        columns.push_back(std::move(*column));
      }
      current = &create_table(*name, Schema(std::move(columns)));
      try {
        pending_next_id = std::stoull(fields[2]);
      } catch (const std::exception&) {
        return fail("bad allocation cursor: " + fields[2]);
      }
    } else if (fields[0] == "R") {
      if (current == nullptr) return fail("row before any table: " + line);
      if (fields.size() < 2) return fail("short row record: " + line);
      RowId id = kInvalidRow;
      try {
        id = std::stoull(fields[1]);
      } catch (const std::exception&) {
        return fail("bad row id: " + fields[1]);
      }
      std::vector<Value> cells;
      cells.reserve(fields.size() - 2);
      for (std::size_t i = 2; i < fields.size(); ++i) {
        auto v = decode_value(fields[i]);
        if (!v) return fail(v.error().to_string());
        cells.push_back(std::move(*v));
      }
      current->insert_with_id(id, std::move(cells));
    } else {
      return fail("unknown snapshot record: " + line);
    }
  }
  if (!saw_header) return fail("empty snapshot");
  finish_table();
  journaling_ = was_journaling;
  check_invariants();
  return {};
}

void Database::check_invariants() const {
#if SPHINX_CONTRACTS_ENABLED
  SPHINX_INVARIANT(creation_order_.size() == tables_.size(),
                   "creation order out of sync with the table map");
  for (const auto& [name, table] : tables_) {
    SPHINX_INVARIANT(table != nullptr, "null table in database");
    SPHINX_INVARIANT(table->name() == name,
                     "table registered under the wrong name: " + name);
    SPHINX_INVARIANT(std::find(creation_order_.begin(), creation_order_.end(),
                               name) != creation_order_.end(),
                     "table missing from creation order: " + name);
    table->check_invariants();
  }
  for (const JournalEntry& e : journal_.entries()) {
    SPHINX_INVARIANT(tables_.contains(e.table),
                     "journal entry references unknown table: " + e.table);
  }
#endif
}

void Database::on_insert(const std::string& table, RowId id,
                         const std::vector<Value>& cells) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kInsert;
  entry.table = table;
  entry.row = id;
  entry.cells = cells;
  journal_.append(std::move(entry));
}

void Database::on_update(const std::string& table, RowId id,
                         std::size_t column, const Value& value) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kUpdate;
  entry.table = table;
  entry.row = id;
  entry.column = column;
  entry.cells = {value};
  journal_.append(std::move(entry));
}

void Database::on_erase(const std::string& table, RowId id) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kErase;
  entry.table = table;
  entry.row = id;
  journal_.append(std::move(entry));
}

}  // namespace sphinx::db
