/// Policy-based scheduling: per-user resource-usage quotas.
///
/// Two production managers of the same VO share one SPHINX server's
/// grid.  Alice has CPU-time quota everywhere; Bob's quota allows only
/// three sites.  The policy engine (eq. 4 of the paper: quota_i^s >=
/// required_i^s) filters Bob's feasible set before any strategy runs --
/// his jobs land only where his quota permits, while Alice's spread out.

#include <cstdio>
#include <map>

#include "common/strings.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::exp;

  ScenarioConfig scenario_config;
  scenario_config.seed = 11;
  Scenario scenario(scenario_config);
  TenantOptions options;
  options.algorithm = core::Algorithm::kNumCpus;
  options.use_policy = true;
  Tenant& alice = scenario.add_tenant("alice", options);
  Tenant& bob = scenario.add_tenant("bob", options);

  // Quotas: Alice generous everywhere; Bob restricted to three sites.
  const std::vector<std::string> bob_sites = {"spider", "spike", "grid3"};
  for (const auto& site : scenario.catalog()) {
    alice.server->set_quota(alice.client->config().user, site.id,
                            "cpu_seconds", 1e7);
    const bool allowed =
        std::find(bob_sites.begin(), bob_sites.end(), site.name) !=
        bob_sites.end();
    bob.server->set_quota(bob.client->config().user, site.id, "cpu_seconds",
                          allowed ? 1e7 : 0.0);
  }

  workflow::WorkloadConfig workload;
  auto gen_a = scenario.make_generator("alice", workload);
  auto gen_b = scenario.make_generator("bob", workload);
  const auto dags_a = gen_a.generate_batch("alice", 5);
  const auto dags_b = gen_b.generate_batch("bob", 5);

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags_a) alice.client->submit(dag);
    for (const auto& dag : dags_b) bob.client->submit(dag);
  });
  scenario.run(hours(12));

  const auto spread = [&](Tenant& tenant) {
    std::map<std::string, int> by_site;
    for (const auto& site : scenario.catalog()) {
      const auto& obs = tenant.client->site_observations();
      const auto it = obs.find(site.id);
      if (it != obs.end() && it->second.completed > 0) {
        by_site[site.name] = static_cast<int>(it->second.completed);
      }
    }
    return by_site;
  };

  for (Tenant* tenant : {&alice, &bob}) {
    std::printf("\n%s: %zu/%zu dags finished, avg %s; jobs per site:\n",
                tenant->label.c_str(), tenant->client->dags_finished(),
                tenant->client->dag_outcomes().size(),
                format_duration(tenant->client->avg_dag_completion()).c_str());
    for (const auto& [site, count] : spread(*tenant)) {
      std::printf("  %-12s %d\n", site.c_str(), count);
    }
    std::printf("  (policy filtered the candidate set %zu times)\n",
                tenant->server->stats().policy_rejections);
  }

  // Invariant check for the example's claim: Bob only ran where allowed.
  bool bob_confined = true;
  for (const auto& [site, count] : spread(bob)) {
    if (std::find(bob_sites.begin(), bob_sites.end(), site) ==
        bob_sites.end()) {
      bob_confined = false;
    }
  }
  std::printf("\nbob confined to his quota sites: %s\n",
              bob_confined ? "yes" : "NO (bug!)");
  return bob_confined ? 0 : 1;
}
