/// Ablation: the tracker timeout.
///
/// The timeout is the fault-tolerance trigger (paper section 4.3.4): too
/// short and healthy-but-queued jobs are churned (wasted stage-in and
/// requeues); too long and jobs lost to black holes stall their DAGs.
/// This sweep runs the completion-time strategy at several timeouts.

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation", "tracker timeout sweep (30 dags x 10 jobs)");

  std::printf("\n%-12s %-16s %-12s %-12s %-12s\n", "timeout", "avg dag (s)",
              "timeouts", "extensions", "reschedules");
  for (const double timeout_minutes : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    std::vector<exp::TenantSpec> specs;
    exp::TenantOptions options;
    options.algorithm = core::Algorithm::kCompletionTime;
    options.job_timeout = minutes(timeout_minutes);
    specs.push_back({"completion-time", options});

    exp::ExperimentConfig config = paper_config(30);
    exp::Experiment experiment(config);
    const auto results = experiment.run(specs);
    const auto& r = results.front();
    std::printf("%-12s %-16.1f %-12zu %-12zu %-12zu\n",
                (format_double(timeout_minutes, 0) + " min").c_str(),
                r.avg_dag_completion, r.timeouts, r.extensions, r.replans);
  }
  std::printf("\nexpectation: longer timeouts let jobs lost to black holes "
              "stall their DAGs for the full period;\nthe progress-aware "
              "extensions keep short timeouts from churning slow-but-alive "
              "jobs\n");
  return 0;
}
