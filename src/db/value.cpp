#include "db/value.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace sphinx::db {

const char* to_string(ValueType type) noexcept {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kReal: return "real";
    case ValueType::kText: return "text";
    case ValueType::kBool: return "bool";
  }
  return "?";
}

ValueType Value::type() const noexcept {
  switch (data_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kReal;
    case 3: return ValueType::kText;
    case 4: return ValueType::kBool;
  }
  return ValueType::kNull;
}

std::int64_t Value::as_int() const {
  SPHINX_ASSERT(std::holds_alternative<std::int64_t>(data_),
                "Value is not an int");
  return std::get<std::int64_t>(data_);
}

double Value::as_real() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  SPHINX_ASSERT(std::holds_alternative<double>(data_), "Value is not a real");
  return std::get<double>(data_);
}

const std::string& Value::as_text() const {
  SPHINX_ASSERT(std::holds_alternative<std::string>(data_),
                "Value is not text");
  return std::get<std::string>(data_);
}

bool Value::as_bool() const {
  SPHINX_ASSERT(std::holds_alternative<bool>(data_), "Value is not a bool");
  return std::get<bool>(data_);
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kReal: return format_double(as_real(), 9);
    case ValueType::kText: return as_text();
    case ValueType::kBool: return as_bool() ? "true" : "false";
  }
  return "";
}

}  // namespace sphinx::db
