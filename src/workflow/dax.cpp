#include "workflow/dax.hpp"

#include "rpc/xml.hpp"

namespace sphinx::workflow {

using rpc::XmlNode;

std::string write_dax(const Dag& dag) {
  XmlNode root("adag");
  root.attributes["name"] = dag.name();
  root.attributes["dagId"] = std::to_string(dag.id().value());
  root.attributes["jobCount"] = std::to_string(dag.size());

  for (const JobSpec& job : dag.jobs()) {
    XmlNode node("job");
    node.attributes["id"] = std::to_string(job.id.value());
    node.attributes["name"] = job.name;
    node.attributes["computeTime"] = std::to_string(job.compute_time);
    for (const data::Lfn& input : job.inputs) {
      XmlNode uses("uses");
      uses.attributes["lfn"] = input;
      uses.attributes["link"] = "input";
      node.add_child(std::move(uses));
    }
    XmlNode output("uses");
    output.attributes["lfn"] = job.output;
    output.attributes["link"] = "output";
    output.attributes["size"] = std::to_string(job.output_bytes);
    node.add_child(std::move(output));
    root.add_child(std::move(node));
  }

  // Dependencies in the DAX child/parent form.
  for (const JobSpec& job : dag.jobs()) {
    const auto& parents = dag.parents(job.id);
    if (parents.empty()) continue;
    XmlNode child("child");
    child.attributes["ref"] = std::to_string(job.id.value());
    for (const JobId parent : parents) {
      XmlNode p("parent");
      p.attributes["ref"] = std::to_string(parent.value());
      child.add_child(std::move(p));
    }
    root.add_child(std::move(child));
  }
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" +
         rpc::xml_write(root, 2);
}

namespace {

Expected<std::uint64_t> parse_id(const std::string& text,
                                 const char* what) {
  if (text.empty()) return make_error("dax_parse", std::string(what) + " missing");
  try {
    return static_cast<std::uint64_t>(std::stoull(text));
  } catch (const std::exception&) {
    return make_error("dax_parse", std::string(what) + " not a number: " + text);
  }
}

Expected<double> parse_number(const std::string& text, const char* what,
                              double fallback) {
  if (text.empty()) return fallback;
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    return make_error("dax_parse", std::string(what) + " not a number: " + text);
  }
}

}  // namespace

Expected<Dag> parse_dax(const std::string& xml) {
  auto doc = rpc::xml_parse(xml);
  if (!doc) return Unexpected<Error>{doc.error()};
  if (doc->name != "adag") {
    return make_error("dax_parse", "root element is not <adag>");
  }
  auto dag_id = parse_id(doc->attribute("dagId"), "dagId");
  if (!dag_id) return Unexpected<Error>{dag_id.error()};

  Dag dag(DagId(*dag_id), doc->attribute("name"));

  for (const XmlNode* job_node : doc->children_named("job")) {
    auto id = parse_id(job_node->attribute("id"), "job id");
    if (!id) return Unexpected<Error>{id.error()};
    auto compute =
        parse_number(job_node->attribute("computeTime"), "computeTime", 60.0);
    if (!compute) return Unexpected<Error>{compute.error()};

    JobSpec job;
    job.id = JobId(*id);
    job.name = job_node->attribute("name");
    job.compute_time = *compute;
    bool has_output = false;
    for (const XmlNode* uses : job_node->children_named("uses")) {
      const std::string link = uses->attribute("link");
      const std::string lfn = uses->attribute("lfn");
      if (lfn.empty()) return make_error("dax_parse", "<uses> without lfn");
      if (link == "input") {
        job.inputs.push_back(lfn);
      } else if (link == "output") {
        if (has_output) {
          return make_error("dax_parse",
                            "job " + job.name + " declares two outputs");
        }
        has_output = true;
        job.output = lfn;
        auto size = parse_number(uses->attribute("size"), "size", 0.0);
        if (!size) return Unexpected<Error>{size.error()};
        job.output_bytes = *size;
      } else {
        return make_error("dax_parse", "unknown uses link: " + link);
      }
    }
    if (!has_output) {
      return make_error("dax_parse", "job " + job.name + " has no output");
    }
    if (dag.has_job(job.id)) {
      return make_error("dax_parse", "duplicate job id in DAX");
    }
    dag.add_job(std::move(job));
  }

  for (const XmlNode* child_node : doc->children_named("child")) {
    auto child = parse_id(child_node->attribute("ref"), "child ref");
    if (!child) return Unexpected<Error>{child.error()};
    if (!dag.has_job(JobId(*child))) {
      return make_error("dax_parse", "child references unknown job");
    }
    for (const XmlNode* parent_node : child_node->children_named("parent")) {
      auto parent = parse_id(parent_node->attribute("ref"), "parent ref");
      if (!parent) return Unexpected<Error>{parent.error()};
      if (!dag.has_job(JobId(*parent))) {
        return make_error("dax_parse", "parent references unknown job");
      }
      if (JobId(*parent) == JobId(*child)) {
        return make_error("dax_parse", "self edge in DAX");
      }
      dag.add_edge(JobId(*parent), JobId(*child));
    }
  }

  if (const auto valid = dag.validate(); !valid.ok()) {
    return Unexpected<Error>{valid.error()};
  }
  return dag;
}

}  // namespace sphinx::workflow
