file(REMOVE_RECURSE
  "CMakeFiles/fig5_algorithms_120.dir/fig5_algorithms_120.cpp.o"
  "CMakeFiles/fig5_algorithms_120.dir/fig5_algorithms_120.cpp.o.d"
  "fig5_algorithms_120"
  "fig5_algorithms_120.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_algorithms_120.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
