# Empty dependencies file for example_physics_production.
# This may be replaced when dependencies are built.
