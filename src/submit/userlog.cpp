#include "submit/userlog.hpp"

#include <cstdio>
#include <unordered_map>

namespace sphinx::submit {

int userlog_event_number(GatewayJobState state) noexcept {
  // The numbers Condor's user log assigns to the analogous events.
  switch (state) {
    case GatewayJobState::kSubmitted: return 0;   // ULOG_SUBMIT
    case GatewayJobState::kRunning: return 1;     // ULOG_EXECUTE
    case GatewayJobState::kCompleted: return 5;   // ULOG_JOB_TERMINATED
    case GatewayJobState::kRemoved: return 9;     // ULOG_JOB_ABORTED
    case GatewayJobState::kHeld: return 12;       // ULOG_JOB_HELD
    case GatewayJobState::kIdle: return 13;       // ULOG_JOB_RELEASED-ish
    case GatewayJobState::kStaging: return 7;     // ULOG_IMAGE_SIZE (reused)
    case GatewayJobState::kFailed: return 2;      // ULOG_EXECUTABLE_ERROR
  }
  return 28;  // ULOG_NONE
}

void UserLog::append(const GatewayEvent& event) {
  events_.push_back(UserLogEvent{event.job, event.state, event.at});
}

std::vector<UserLogEvent> UserLog::history(JobId job) const {
  std::vector<UserLogEvent> out;
  for (const UserLogEvent& e : events_) {
    if (e.job == job) out.push_back(e);
  }
  return out;
}

std::vector<JobId> UserLog::jobs_in_state(GatewayJobState state) const {
  std::unordered_map<JobId, GatewayJobState> latest;
  std::vector<JobId> order;  // first-seen order for stable output
  for (const UserLogEvent& e : events_) {
    if (!latest.contains(e.job)) order.push_back(e.job);
    latest[e.job] = e.state;
  }
  std::vector<JobId> out;
  for (const JobId job : order) {
    if (latest.at(job) == state) out.push_back(job);
  }
  return out;
}

Duration UserLog::time_between(JobId job, GatewayJobState from,
                               GatewayJobState to) const {
  SimTime from_at = kNever;
  for (const UserLogEvent& e : events_) {
    if (e.job != job) continue;
    if (e.state == from && from_at == kNever) from_at = e.at;
    if (e.state == to && from_at != kNever) return e.at - from_at;
  }
  return -1.0;
}

std::string UserLog::render() const {
  std::string out;
  for (const UserLogEvent& e : events_) {
    char line[160];
    const auto total = static_cast<long long>(e.at);
    std::snprintf(line, sizeof(line),
                  "%03d (%03llu.000.000) +%02lld:%02lld:%02lld Job %s\n",
                  userlog_event_number(e.state),
                  static_cast<unsigned long long>(e.job.value()),
                  total / 3600, (total % 3600) / 60, total % 60,
                  to_string(e.state));
    out += line;
  }
  return out;
}

}  // namespace sphinx::submit
