// Tests for the submission layer: ClassAds, the Condor-G gateway
// (stage-in, output registration, cancellation) and DAGMan.

#include <gtest/gtest.h>

#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "data/storage.hpp"
#include "grid/grid.hpp"
#include "submit/classad.hpp"
#include "submit/condor_g.hpp"
#include "submit/dagman.hpp"
#include "workflow/dag.hpp"

namespace sphinx::submit {
namespace {

constexpr double kMB = 1e6;

TEST(ClassAd, SetGetTyped) {
  ClassAd ad;
  ad.set("cpus", std::int64_t{16});
  ad.set("speed", 1.5);
  ad.set("site", std::string("acdc"));
  ad.set("healthy", true);
  EXPECT_EQ(ad.get_int("cpus"), 16);
  EXPECT_DOUBLE_EQ(ad.get_real("speed"), 1.5);
  EXPECT_DOUBLE_EQ(ad.get_real("cpus"), 16.0);  // int widens
  EXPECT_EQ(ad.get_string("site"), "acdc");
  EXPECT_TRUE(ad.get_bool("healthy"));
  EXPECT_TRUE(ad.has("cpus"));
  EXPECT_FALSE(ad.has("nope"));
  EXPECT_THROW((void)ad.get("nope"), AssertionError);
  EXPECT_THROW((void)ad.get_int("site"), AssertionError);
}

TEST(ClassAd, RequirementEvaluation) {
  ClassAd machine;
  machine.set("cpus", std::int64_t{16});
  machine.set("site", std::string("acdc"));

  EXPECT_TRUE(evaluate({"cpus", CmpOp::kGe, std::int64_t{8}}, machine));
  EXPECT_FALSE(evaluate({"cpus", CmpOp::kGt, std::int64_t{16}}, machine));
  EXPECT_TRUE(evaluate({"site", CmpOp::kEq, std::string("acdc")}, machine));
  EXPECT_TRUE(evaluate({"site", CmpOp::kNe, std::string("atlas")}, machine));
  // Missing attribute and incomparable types never match.
  EXPECT_FALSE(evaluate({"memory", CmpOp::kGe, std::int64_t{1}}, machine));
  EXPECT_FALSE(evaluate({"site", CmpOp::kEq, std::int64_t{1}}, machine));
}

TEST(ClassAd, MatchmakingDirectionalAndSymmetric) {
  ClassAd job;
  job.set("owner", std::string("juin"));
  job.add_requirement({"cpus", CmpOp::kGe, std::int64_t{8}});

  ClassAd machine;
  machine.set("cpus", std::int64_t{16});

  EXPECT_TRUE(job.matches(machine));
  EXPECT_TRUE(ClassAd::symmetric_match(job, machine));

  machine.add_requirement({"owner", CmpOp::kEq, std::string("someone-else")});
  EXPECT_TRUE(job.matches(machine));
  EXPECT_FALSE(ClassAd::symmetric_match(job, machine));
}

TEST(ClassAd, RenderLooksLikeSubmitFile) {
  ClassAd ad;
  ad.set("executable", std::string("reco"));
  ad.set("estimated_runtime", 60.0);
  ad.add_requirement({"site", CmpOp::kEq, std::string("acdc")});
  const std::string text = ad.render();
  EXPECT_NE(text.find("executable = \"reco\""), std::string::npos);
  EXPECT_NE(text.find("requirements = site == \"acdc\""), std::string::npos);
  EXPECT_NE(text.find("queue"), std::string::npos);
}

class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture()
      : grid(engine, SeedTree(17)),
        transfers(engine),
        gateway(grid, transfers, rls, &storage, "gw-test") {
    grid::SiteSpec spec;
    spec.site.name = "exec";
    spec.site.cpus = 4;
    spec.site.runtime_noise = 0.0;
    exec_site = grid.add_site(spec);
    spec.site.name = "store";
    store_site = grid.add_site(spec);
    grid.start();
    transfers.set_link(exec_site, {10 * kMB, 10 * kMB});
    transfers.set_link(store_site, {10 * kMB, 10 * kMB});
    storage.add(exec_site, 1e12);
    rls.register_replica("lfn://in1", store_site, 100 * kMB);
    rls.register_replica("lfn://in2", store_site, 50 * kMB);
  }

  SubmitRequest basic_request(JobId id) {
    SubmitRequest request;
    request.job = id;
    request.name = "job";
    request.user = UserId(1);
    request.site = exec_site;
    request.compute_time = 60.0;
    request.inputs = {{"lfn://in1", store_site, 100 * kMB},
                      {"lfn://in2", store_site, 50 * kMB}};
    request.output = "lfn://out-" + std::to_string(id.value());
    request.output_bytes = 10 * kMB;
    return request;
  }

  sim::Engine engine;
  grid::Grid grid;
  data::TransferService transfers;
  data::ReplicaLocationService rls;
  data::StorageFabric storage;
  CondorG gateway;
  SiteId exec_site, store_site;
};

TEST_F(GatewayFixture, FullLifecycleWithStaging) {
  std::vector<GatewayJobState> states;
  SimTime completed_at = 0;
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)),
                             [&](const GatewayEvent& e) {
                               states.push_back(e.state);
                               if (e.state == GatewayJobState::kCompleted) {
                                 completed_at = e.at;
                               }
                             }));
  engine.run_until();
  ASSERT_GE(states.size(), 4u);
  EXPECT_EQ(states.back(), GatewayJobState::kCompleted);
  // 150 MB at 10 MB/s = 15 s staging + 60 s compute.
  EXPECT_NEAR(completed_at, 75.0, 1.0);
  // Output registered in RLS at the execution site and stored.
  ASSERT_TRUE(rls.exists("lfn://out-1"));
  EXPECT_EQ(rls.locate("lfn://out-1")[0].site, exec_site);
  EXPECT_TRUE(storage.find(exec_site)->has("lfn://out-1"));
}

TEST_F(GatewayFixture, SubmitAdRecordsDecision) {
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)), nullptr));
  const ClassAd* ad = gateway.submit_ad(JobId(1));
  ASSERT_NE(ad, nullptr);
  EXPECT_EQ(ad->get_string("vo"), "uscms");
  EXPECT_EQ(ad->get_int("input_count"), 2);
  EXPECT_NE(ad->get_string("grid_resource").find("exec"), std::string::npos);
  EXPECT_EQ(gateway.submit_ad(JobId(99)), nullptr);
}

TEST_F(GatewayFixture, SubmitToDownSiteFails) {
  grid.site(exec_site).go_down();
  bool saw_failed = false;
  EXPECT_FALSE(gateway.submit(basic_request(JobId(1)),
                              [&](const GatewayEvent& e) {
                                saw_failed = e.state == GatewayJobState::kFailed;
                              }));
  EXPECT_TRUE(saw_failed);
  EXPECT_EQ(gateway.state_of(JobId(1)), GatewayJobState::kFailed);
}

TEST_F(GatewayFixture, CancelDuringStagingKillsTransfers) {
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)), nullptr));
  engine.run_until(5.0);  // mid-stage-in
  EXPECT_EQ(transfers.active(), 1u);
  EXPECT_TRUE(gateway.cancel(JobId(1)));
  engine.run_until();
  EXPECT_EQ(gateway.state_of(JobId(1)), GatewayJobState::kRemoved);
  EXPECT_EQ(transfers.stats().cancelled, 1u);
  EXPECT_FALSE(rls.exists("lfn://out-1"));
}

TEST_F(GatewayFixture, CancelUnknownOrTerminalFails) {
  EXPECT_FALSE(gateway.cancel(JobId(5)));
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)), nullptr));
  engine.run_until();
  EXPECT_FALSE(gateway.cancel(JobId(1)));  // completed
}

TEST_F(GatewayFixture, ResubmitAfterTerminalStateAllowed) {
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)), nullptr));
  engine.run_until(2.0);
  ASSERT_TRUE(gateway.cancel(JobId(1)));
  engine.run_until(3.0);
  ASSERT_TRUE(gateway.submit(basic_request(JobId(1)), nullptr));
  engine.run_until();
  EXPECT_EQ(gateway.state_of(JobId(1)), GatewayJobState::kCompleted);
}

TEST_F(GatewayFixture, QueueSummaryCounts) {
  for (int i = 1; i <= 6; ++i) {
    SubmitRequest r = basic_request(JobId(i));
    r.inputs.clear();  // no staging: straight to compute
    ASSERT_TRUE(gateway.submit(r, nullptr));
  }
  engine.run_until(1.0);
  const GatewayQueue q = gateway.queue();
  EXPECT_EQ(q.running, 4);  // 4 CPUs
  EXPECT_EQ(q.idle, 2);
  engine.run_until();
  EXPECT_EQ(gateway.queue().completed, 6);
  EXPECT_EQ(gateway.submissions(), 6u);
}

TEST_F(GatewayFixture, LostJobStaysRunningUntilTrackerActs) {
  SubmitRequest r = basic_request(JobId(1));
  r.inputs.clear();
  ASSERT_TRUE(gateway.submit(r, nullptr));
  engine.run_until(10.0);
  grid.site(exec_site).go_down();
  engine.run_until(hours(1));
  // No event ever arrives; the gateway still believes the job is running.
  EXPECT_EQ(gateway.state_of(JobId(1)), GatewayJobState::kRunning);
  // condor_rm against the dead site falls back to forced local removal.
  EXPECT_TRUE(gateway.cancel(JobId(1)));
  EXPECT_EQ(gateway.state_of(JobId(1)), GatewayJobState::kRemoved);
}

class DagManFixture : public GatewayFixture {
 protected:
  workflow::Dag chain_dag() {
    workflow::Dag dag(DagId(1), "chain");
    workflow::JobSpec a;
    a.id = JobId(11);
    a.name = "a";
    a.compute_time = 10.0;
    a.inputs = {"lfn://in1"};
    a.output = "lfn://mid";
    a.output_bytes = 10 * kMB;
    workflow::JobSpec b;
    b.id = JobId(12);
    b.name = "b";
    b.compute_time = 10.0;
    b.inputs = {"lfn://mid"};
    b.output = "lfn://final";
    b.output_bytes = kMB;
    dag.add_job(a);
    dag.add_job(b);
    dag.add_edge(JobId(11), JobId(12));
    return dag;
  }

  PlacementCallout fixed_site_callout() {
    return [this](const workflow::JobSpec& spec)
               -> std::optional<Placement> {
      Placement p;
      p.site = exec_site;
      for (const auto& lfn : spec.inputs) {
        const auto replicas = rls.locate(lfn);
        if (replicas.empty()) return std::nullopt;  // input not yet there
        p.inputs.push_back(
            {lfn, replicas[0].site, replicas[0].size_bytes});
      }
      return p;
    };
  }
};

TEST_F(DagManFixture, RunsChainInOrder) {
  SimTime finished = -1;
  DagMan dagman(gateway, chain_dag(), UserId(1), "uscms",
                fixed_site_callout(),
                [&](DagId, SimTime at) { finished = at; });
  dagman.start(0.0);
  engine.run_until();
  EXPECT_TRUE(dagman.finished());
  EXPECT_FALSE(dagman.failed());
  EXPECT_EQ(dagman.completed_jobs(), 2u);
  EXPECT_GT(finished, 20.0);  // both computes plus staging
  EXPECT_TRUE(rls.exists("lfn://final"));
}

TEST_F(DagManFixture, SecondJobWaitsForFirstOutput) {
  // b's input lfn://mid only exists after a completes; the callout defers
  // b until then, proving dependency-driven release.
  DagMan dagman(gateway, chain_dag(), UserId(1), "uscms",
                fixed_site_callout(), nullptr);
  dagman.start(0.0);
  engine.run_until(5.0);
  EXPECT_EQ(dagman.completed_jobs(), 0u);
  EXPECT_FALSE(rls.exists("lfn://mid"));
  engine.run_until();
  EXPECT_TRUE(dagman.finished());
}

TEST_F(DagManFixture, RetriesOnFailureUpToBudget) {
  // Site flips down after the first job starts; DAGMan's resubmissions
  // fail (down gatekeeper) until the budget is exhausted.
  DagMan dagman(gateway, chain_dag(), UserId(1), "uscms",
                fixed_site_callout(), nullptr, 2);
  dagman.start(0.0);
  engine.run_until(1.0);
  grid.site(exec_site).go_down();
  // Kick the gateway: force-remove triggers DAGMan's retry path.
  ASSERT_TRUE(gateway.cancel(JobId(11)));
  engine.run_until();
  EXPECT_TRUE(dagman.failed());
  EXPECT_FALSE(dagman.finished());
  EXPECT_GE(dagman.resubmissions(), 1u);
}

}  // namespace
}  // namespace sphinx::submit
