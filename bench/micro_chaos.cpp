/// Microbenchmarks for the chaos harness: schedule synthesis, the
/// minimizer's candidate churn, and a full chaotic/baseline run pair
/// (the unit of work a campaign fans out).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"
#include "chaos/schedule.hpp"
#include "exp/scenario.hpp"

namespace {

using namespace sphinx;

void BM_ScheduleSynthesis(benchmark::State& state) {
  chaos::ScheduleConfig config;
  config.outages = static_cast<int>(state.range(0));
  const std::vector<std::string> sites = exp::Scenario::site_names();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const chaos::ChaosSchedule schedule =
        chaos::synthesize(seed++, config, sites);
    benchmark::DoNotOptimize(schedule.outage_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScheduleSynthesis)->Range(8, 256);

void BM_ScheduleJsonRoundTrip(benchmark::State& state) {
  chaos::ScheduleConfig config;
  config.outages = static_cast<int>(state.range(0));
  const chaos::ChaosSchedule schedule =
      chaos::synthesize(42, config, exp::Scenario::site_names());
  for (auto _ : state) {
    const auto parsed = chaos::schedule_from_json(chaos::to_json(schedule));
    benchmark::DoNotOptimize(parsed.has_value());
  }
}
BENCHMARK(BM_ScheduleJsonRoundTrip)->Range(8, 256);

void BM_MinimizeSyntheticPredicate(benchmark::State& state) {
  // Predicate cost ~0: measures the minimizer's own candidate churn.
  chaos::ScheduleConfig config;
  config.outages = static_cast<int>(state.range(0));
  config.crashes = 3;
  const chaos::ChaosSchedule schedule =
      chaos::synthesize(7, config, exp::Scenario::site_names());
  const auto fails = [](const chaos::ChaosSchedule& candidate) {
    return !candidate.crash_records.empty() &&
           candidate.crash_records.back() >= 50;
  };
  for (auto _ : state) {
    const chaos::ChaosSchedule minimized =
        chaos::minimize_schedule(schedule, fails);
    benchmark::DoNotOptimize(minimized.crash_records.size());
  }
}
BENCHMARK(BM_MinimizeSyntheticPredicate)->Range(8, 64);

void BM_ChaosRunPair(benchmark::State& state) {
  chaos::ChaosRunConfig config;
  config.seed = 5;
  config.dag_count = 2;
  config.jobs_per_dag = 4;
  config.horizon = hours(10);
  config.schedule.span = hours(4);
  config.schedule.outages = 4;
  config.schedule.crashes = 1;
  config.schedule.min_crash_record = 30;
  config.schedule.max_crash_record = 200;
  const chaos::ChaosSchedule schedule = chaos::synthesize_schedule(config);
  for (auto _ : state) {
    const chaos::ChaosRunResult result =
        chaos::run_chaos_pair(config, schedule);
    benchmark::DoNotOptimize(result.digest);
  }
}
BENCHMARK(BM_ChaosRunPair);

}  // namespace
