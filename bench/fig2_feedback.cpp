/// Figure 2: effect of utilizing feedback information.
///
/// Paper: average DAG completion time for round-robin and
/// number-of-CPUs scheduling, each with and without feedback, on 30 DAGs
/// x 10 jobs.  Expected shape: the with-feedback variants finish DAGs
/// ~20-29 % faster, because without feedback the scheduler keeps
/// submitting to unreliable sites and pays the timeout every time.

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 2",
               "feedback vs no feedback (30 dags x 10 jobs/dag)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kRoundRobin;
  options.use_feedback = true;
  specs.push_back({"round-robin", options});
  options.use_feedback = false;
  specs.push_back({"round-robin w/o feedback", options});
  options.algorithm = core::Algorithm::kNumCpus;
  options.use_feedback = true;
  specs.push_back({"num-cpus", options});
  options.use_feedback = false;
  specs.push_back({"num-cpus w/o feedback", options});

  exp::Experiment experiment(paper_config(30));
  const auto results = experiment.run(specs);
  print_results("fig2", results, false);

  // Shape check against the paper's claim.
  const auto find = [&](const std::string& label) -> const exp::TenantResult& {
    for (const auto& r : results) {
      if (r.label == label) return r;
    }
    throw AssertionError("missing tenant " + label);
  };
  const double rr = find("round-robin").avg_dag_completion;
  const double rr_nofb = find("round-robin w/o feedback").avg_dag_completion;
  const double nc = find("num-cpus").avg_dag_completion;
  const double nc_nofb = find("num-cpus w/o feedback").avg_dag_completion;
  std::printf("feedback improvement: round-robin %.1f%%, num-cpus %.1f%%\n",
              100.0 * (rr_nofb - rr) / rr_nofb,
              100.0 * (nc_nofb - nc) / nc_nofb);
  std::printf("paper reports ~20-29%% improvement from feedback\n");
  return 0;
}
