#pragma once
/// \file contracts.hpp
/// Runtime invariant contracts.
///
/// SPHINX_ASSERT (error.hpp) guards against outright programming errors
/// and is always on.  The contract macros below express richer design
/// obligations -- event-queue monotonicity, job-state-machine legality,
/// quota non-negativity, journal/table consistency -- that are cheap
/// enough for test builds but not free on hot paths.  They compile out
/// under NDEBUG unless SPHINX_ENABLE_CONTRACTS is defined; the build
/// defines it by default (option SPHINX_CONTRACTS), so the tier-1 suite
/// and the sanitizer presets always run with contracts armed.
///
/// Contract conditions must be side-effect free: a disabled contract
/// never evaluates its condition.

#include <string>

#include "common/error.hpp"

namespace sphinx {

/// Thrown when a contract macro fails.  Derives from AssertionError so
/// existing catch sites treat a violated contract as the programming
/// error it is.
class ContractViolation : public AssertionError {
 public:
  using AssertionError::AssertionError;
};

}  // namespace sphinx

#if !defined(NDEBUG) || defined(SPHINX_ENABLE_CONTRACTS)
#define SPHINX_CONTRACTS_ENABLED 1
#else
#define SPHINX_CONTRACTS_ENABLED 0
#endif

#if SPHINX_CONTRACTS_ENABLED
#define SPHINX_CONTRACT_IMPL(kind, cond, msg)                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::sphinx::ContractViolation(std::string(kind " violated: ") + \
                                        (msg) + " [" #cond "]");          \
    }                                                                     \
  } while (false)
#else
// Condition stays compiled (so it cannot rot) but is never evaluated.
#define SPHINX_CONTRACT_IMPL(kind, cond, msg) \
  do {                                        \
    if (false) {                              \
      static_cast<void>(cond);                \
      static_cast<void>(msg);                 \
    }                                         \
  } while (false)
#endif

/// A property that must hold for an object's state as a whole.
#define SPHINX_INVARIANT(cond, msg) SPHINX_CONTRACT_IMPL("invariant", cond, msg)
/// A property the caller must establish before the call.
#define SPHINX_PRECONDITION(cond, msg) \
  SPHINX_CONTRACT_IMPL("precondition", cond, msg)
/// A property the callee guarantees on return.
#define SPHINX_POSTCONDITION(cond, msg) \
  SPHINX_CONTRACT_IMPL("postcondition", cond, msg)
