#pragma once
/// \file analyzer.hpp
/// Token-stream / declaration-aware analysis substrate for sphinx-lint.
///
/// The original linter matched regexes against comment-stripped text;
/// that is still how the simple rules work, but the determinism rules
/// added later (ordered-escape, rng-stream-*, derived-state,
/// observe-only) need more structure:
///
///  - a real token stream (identifiers, punctuation, string literals
///    *with their values* -- the stream registry is built from
///    `seeds.stream("...")` literals, which blanked text cannot see);
///  - declaration tracking (which names are unordered containers, which
///    functions return them, which members are annotated derived);
///  - function extents (a derived member may only be mutated inside the
///    functions its annotation names);
///  - file-level acknowledgment comments (`// sphinx-lint:
///    ordered-escape-checked ...`) for audited sites.
///
/// Everything here is deliberately heuristic -- no libclang, no
/// preprocessor -- but the heuristics are chosen so a miss is quiet,
/// not noisy: the rules fire on patterns they positively recognise.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sphinx::lint {

// --- lexical layer ----------------------------------------------------

/// Source text with comments and string/char literals blanked out
/// (newlines preserved, so offsets map to lines), plus per-line comment
/// text so waivers and acknowledgments can be honoured.
struct Stripped {
  std::string code;                          ///< blanked text, same offsets
  std::vector<std::string> raw_lines;        ///< original lines
  std::vector<std::string> comment_lines;    ///< comment text per line
  std::vector<std::set<std::string>> allow;  ///< per-line waived rules
};

[[nodiscard]] Stripped strip(std::string_view content);

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (spelling, separators removed)
  kString,      ///< text = literal contents, quotes removed, escapes raw
  kChar,        ///< character literal contents
  kPunct,       ///< operator/punctuator (multi-char ops fused: :: -> <<…)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based
};

/// Tokenizes `content`, skipping comments.  String/char literals become
/// single tokens carrying their contents.
[[nodiscard]] std::vector<Token> tokenize(std::string_view content);

// --- declaration layer ------------------------------------------------

/// One function definition found in the token stream.  `name` is the
/// last path component (`rebuild_work_state` for
/// `DataWarehouse::rebuild_work_state`); `qualified` keeps the full
/// spelling.  Token indices are inclusive of the braces.
struct FunctionSpan {
  std::string name;
  std::string qualified;
  std::size_t first_token = 0;  ///< index of the opening `{`
  std::size_t last_token = 0;   ///< index of the matching `}`
};

/// Scans for function definitions (free, member, out-of-line) by
/// recognising `name ( params ) [const noexcept … | : init-list] {`.
/// Control-flow keywords are excluded.  Nested lambdas are attributed
/// to their enclosing named function.
[[nodiscard]] std::vector<FunctionSpan> function_spans(
    const std::vector<Token>& tokens);

/// Innermost named function containing token `index`, or nullptr.
[[nodiscard]] const FunctionSpan* enclosing_function(
    const std::vector<FunctionSpan>& spans, std::size_t index);

// --- per-file context -------------------------------------------------

/// Everything a rule pass needs to know about one translation unit.
struct FileContext {
  std::string rel_path;     ///< scan-root-relative, '/'-separated
  Stripped stripped;
  std::vector<Token> tokens;
  std::set<std::string> acks;  ///< file-level `sphinx-lint: <tag>` tags
  /// Derived-state annotations visible to this file: member name ->
  /// functions allowed to mutate it.  Contains the file's own
  /// annotations; analyze_tree() additionally injects annotations from
  /// sibling files sharing the path stem (warehouse.hpp -> warehouse.cpp).
  std::map<std::string, std::set<std::string>> derived;
  /// Nondeterminism taint for ordered-escape: names declared with an
  /// unordered (or pointer-keyed ordered) container type, and functions
  /// returning one.  Like `derived`, analyze_tree() merges these across
  /// header/source pairs so members declared in the .hpp taint loops in
  /// the .cpp.
  std::set<std::string> tainted_vars;
  std::set<std::string> tainted_fns;

  [[nodiscard]] bool allowed(std::size_t line, const std::string& rule) const;
  [[nodiscard]] bool acknowledged(const std::string& tag) const {
    return acks.contains(tag);
  }
};

/// Builds the context for one file: strip, tokenize, collect
/// acknowledgment tags and the file's own derived annotations.
[[nodiscard]] FileContext parse_file(std::string_view content,
                                     std::string rel_path);

// --- shared path scoping ----------------------------------------------

[[nodiscard]] bool is_header(const std::string& rel_path);
[[nodiscard]] bool is_library_code(const std::string& rel_path);
/// Files exempt from the determinism rules (the sanctioned time/rng
/// abstractions themselves, and the logger).
[[nodiscard]] bool determinism_whitelisted(const std::string& rel_path);
/// First two path components ("src/exp" for "src/exp/scenario.cpp");
/// the granularity at which rng stream names must be unique.
[[nodiscard]] std::string module_of(const std::string& rel_path);
/// 1-based line number of byte `offset` in `text`.
[[nodiscard]] std::size_t line_of(std::string_view text, std::size_t offset);

}  // namespace sphinx::lint
