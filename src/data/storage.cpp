#include "data/storage.hpp"

namespace sphinx::data {

StorageElement::StorageElement(SiteId site, double capacity_bytes)
    : site_(site), capacity_(capacity_bytes) {
  SPHINX_ASSERT(capacity_ > 0, "storage capacity must be positive");
}

double StorageElement::used_by(UserId user) const noexcept {
  const auto it = per_user_.find(user);
  return it == per_user_.end() ? 0.0 : it->second;
}

StatusOrError StorageElement::store(UserId user, const Lfn& lfn, double bytes) {
  SPHINX_ASSERT(bytes >= 0, "file size must be non-negative");
  if (files_.contains(lfn)) {
    return make_error("storage_duplicate", "lfn already stored: " + lfn);
  }
  if (used_ + bytes > capacity_) {
    return make_error("storage_full",
                      "storage element out of space for " + lfn);
  }
  files_.emplace(lfn, StoredFile{user, bytes});
  used_ += bytes;
  per_user_[user] += bytes;
  return {};
}

bool StorageElement::erase(const Lfn& lfn) {
  const auto it = files_.find(lfn);
  if (it == files_.end()) return false;
  used_ -= it->second.bytes;
  per_user_[it->second.owner] -= it->second.bytes;
  files_.erase(it);
  return true;
}

StorageElement& StorageFabric::add(SiteId site, double capacity_bytes) {
  return elements_.try_emplace(site, site, capacity_bytes).first->second;
}

StorageElement* StorageFabric::find(SiteId site) noexcept {
  const auto it = elements_.find(site);
  return it == elements_.end() ? nullptr : &it->second;
}

}  // namespace sphinx::data
