#pragma once
/// \file clarens.hpp
/// Clarens-style GSI-authenticated XML-RPC services with at-least-once
/// delivery.
///
/// "SPHINX ... uses the communication protocol named Clarens for
/// incorporating the concept of grid security" (paper section 3.1).  A
/// ClarensService hosts named methods behind an AuthzPolicy; a
/// ClarensClient issues calls and correlates asynchronous responses.
/// Payloads really are serialized and re-parsed XML-RPC, so the wire
/// format is exercised on every call.
///
/// The wire (transport.hpp's fault model) may lose, duplicate or delay
/// envelopes.  The client therefore retransmits on a per-call timeout
/// with capped exponential backoff plus deterministic jitter, tagging
/// every transmission with the call's sequence number; the service keeps
/// a bounded (caller, sequence) dedup cache and replays the cached reply
/// for retransmissions instead of re-executing the handler.  Handlers
/// thus stay effectively-once while the end-to-end delivery guarantee is
/// at-least-once (until the retry budget is exhausted).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "rpc/gsi.hpp"
#include "rpc/transport.hpp"
#include "rpc/xmlrpc.hpp"

namespace sphinx::rpc {

/// Fault codes used by the service framework itself.
enum class ClarensFault : std::int64_t {
  kParse = 1,        ///< request was not a valid methodCall
  kNoSuchMethod = 2, ///< unknown method name
  kDenied = 3,       ///< authorization failed
  kApplication = 100 ///< method handler reported an error
};

/// Server side: a named endpoint exposing XML-RPC methods.
class ClarensService {
 public:
  /// Handler receives decoded params and the authenticated caller proxy.
  using Method =
      std::function<Expected<XrValue>(const std::vector<XrValue>&, const Proxy&)>;

  ClarensService(MessageBus& bus, std::string endpoint, AuthzPolicy policy);
  ~ClarensService();

  ClarensService(const ClarensService&) = delete;
  ClarensService& operator=(const ClarensService&) = delete;

  /// Registers a method (replaces an existing one of the same name).
  void register_method(const std::string& name, Method method);

  [[nodiscard]] const std::string& endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] std::size_t calls_served() const noexcept { return served_; }
  [[nodiscard]] std::size_t calls_denied() const noexcept { return denied_; }
  /// Retransmissions answered from the dedup cache (handler not re-run).
  [[nodiscard]] std::size_t calls_replayed() const noexcept {
    return replayed_;
  }

  /// Bounds the dedup cache (FIFO eviction).  0 disables deduplication;
  /// unsequenced requests (call_seq == 0) always bypass the cache.
  /// Shrinking trims eagerly: cached replies beyond the new capacity are
  /// evicted right here, not lazily on the next insert -- with the old
  /// lazy scheme a shrink-to-zero left stale replies cached forever
  /// (inserts, the only eviction point, stop happening at capacity 0).
  void set_dedup_capacity(std::size_t capacity);

  /// Current dedup cache occupancy (for tests and diagnostics).
  [[nodiscard]] std::size_t dedup_size() const noexcept {
    return dedup_order_.size();
  }

  /// The cache key for one (caller, sequence) pair.  Length-prefixed so
  /// the key is injective even when endpoint names contain the '#'
  /// separator (shard-qualified names like "sphinx-server/chaos#2"): no
  /// two distinct (from, seq) pairs can alias one cache entry.
  [[nodiscard]] static std::string dedup_key(const std::string& from,
                                             std::uint64_t seq);

  /// Mutable policy access (e.g. to ban a subject at runtime).
  [[nodiscard]] AuthzPolicy& policy() noexcept { return policy_; }

 private:
  void handle(const Envelope& request);
  /// Runs parse/authz/dispatch and returns the serialized response.
  [[nodiscard]] std::string process(const Envelope& request);

  MessageBus& bus_;
  std::string endpoint_;
  AuthzPolicy policy_;
  std::unordered_map<std::string, Method> methods_;
  std::size_t served_ = 0;
  std::size_t denied_ = 0;
  std::size_t replayed_ = 0;
  /// Dedup cache: serialized reply by "caller#seq", FIFO-bounded.  Kept
  /// in memory only -- a recovered server re-executes, which consumers
  /// make idempotent (see DESIGN.md).
  std::size_t dedup_capacity_ = 512;
  std::unordered_map<std::string, std::string> dedup_cache_;
  std::deque<std::string> dedup_order_;
};

/// Client-side retry knobs.  Defaults survive a 60 s partition with
/// margin: the capped schedule 5,10,20,30,30,... sums past four minutes
/// over max_attempts transmissions.
struct RetryPolicy {
  Duration timeout = 5.0;      ///< first-attempt response timeout
  double backoff = 2.0;        ///< multiplier per retry
  Duration max_timeout = 30.0; ///< backoff cap
  double jitter = 0.1;         ///< deterministic +/- fraction of the rto
  int max_attempts = 10;       ///< transmissions before giving up
};

/// Client side: sends calls, retransmits on timeout, correlates responses
/// by sequence number, invokes each continuation exactly once.
class ClarensClient {
 public:
  /// Callback receives the decoded return value or the fault as an Error
  /// (code = "fault:<code>"; code = "rpc_timeout" when the retry budget
  /// is exhausted).
  using Callback = std::function<void(Expected<XrValue>)>;
  /// Durable-outbox hooks: upsert(seq, service, payload, attempt,
  /// last_sent_at) after every transmission, erase(seq) on completion.
  using OutboxUpsert = std::function<void(
      std::uint64_t, const std::string&, const std::string&, int, SimTime)>;
  using OutboxErase = std::function<void(std::uint64_t)>;

  ClarensClient(MessageBus& bus, std::string endpoint, Proxy proxy,
                RetryPolicy retry = {});
  ~ClarensClient();

  ClarensClient(const ClarensClient&) = delete;
  ClarensClient& operator=(const ClarensClient&) = delete;

  /// Issues an asynchronous call.  The callback fires exactly once: when
  /// a response arrives, or with "rpc_timeout" after max_attempts
  /// transmissions went unanswered.
  void call(const std::string& service, const std::string& method,
            std::vector<XrValue> params, Callback callback);

  /// Wires a durable outbox so a journal-recovered owner can re-arm
  /// in-flight calls (see restore_call()).  Pass nullptrs to detach.
  void set_outbox(OutboxUpsert upsert, OutboxErase erase);
  /// Seeds the sequence counter (recovery: persisted last seq + 1).
  void set_next_seq(std::uint64_t next) noexcept { next_seq_ = next; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  /// Re-registers a call restored from the outbox without sending: the
  /// retry timer is re-armed where the crashed instance would have fired
  /// it, so a recovered run replays the identical wire schedule.
  void restore_call(std::uint64_t seq, std::string service,
                    std::string payload, int attempt, SimTime last_sent_at,
                    Callback callback);

  /// Replaces the proxy used for subsequent calls (e.g. after renewal).
  void set_proxy(Proxy proxy) noexcept { proxy_ = std::move(proxy); }
  [[nodiscard]] const Proxy& proxy() const noexcept { return proxy_; }

  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  /// Retransmissions issued (beyond each call's first transmission).
  [[nodiscard]] std::size_t retransmissions() const noexcept {
    return retransmissions_;
  }
  /// Replies for an already-completed call, counted and dropped.
  [[nodiscard]] std::size_t duplicate_replies() const noexcept {
    return duplicate_replies_;
  }
  /// Replies matching no call this client ever completed.
  [[nodiscard]] std::size_t stray_replies() const noexcept {
    return stray_replies_;
  }
  /// Calls that exhausted the retry budget.
  [[nodiscard]] std::size_t exhausted() const noexcept { return exhausted_; }

 private:
  struct CallState {
    std::string service;
    std::string payload;  ///< serialized methodCall, reused verbatim
    Callback callback;
    int attempt = 0;      ///< transmissions so far
    SimTime last_sent_at = 0.0;
    sim::EventHandle timer;
  };

  void handle(const Envelope& response);
  void transmit(std::uint64_t seq);
  void arm_timer(std::uint64_t seq);
  void on_timeout(std::uint64_t seq);
  void complete(std::uint64_t seq, Expected<XrValue> result);
  [[nodiscard]] Duration rto(std::uint64_t seq, int attempt) const;
  void remember_done(std::uint64_t seq);

  MessageBus& bus_;
  std::string endpoint_;
  Proxy proxy_;
  RetryPolicy retry_;
  std::uint64_t next_seq_ = 1;
  /// Ordered so destruction/iteration order is deterministic.
  std::map<std::uint64_t, CallState> pending_;
  /// Recently completed sequence numbers (bounded ring + set) so a late
  /// duplicate reply is told apart from a genuinely unsolicited one.
  std::deque<std::uint64_t> done_ring_;
  std::unordered_set<std::uint64_t> done_set_;
  OutboxUpsert outbox_upsert_;
  OutboxErase outbox_erase_;
  std::size_t retransmissions_ = 0;
  std::size_t duplicate_replies_ = 0;
  std::size_t stray_replies_ = 0;
  std::size_t exhausted_ = 0;
};

}  // namespace sphinx::rpc
