/// Fault tolerance end to end: a mid-run site failure, tracker timeouts,
/// replanning, and a SPHINX server crash with journal recovery.
///
/// Timeline:
///   t=0        submit 6 DAGs; ufloridapg (the best site) is healthy
///   t=10 min   ufloridapg goes down *silently*, taking its jobs with it
///   t=12 min   the SPHINX server "crashes"; a new instance is rebuilt
///              from the database journal and resumes scheduling
///   ...        tracker timeouts fire for the lost jobs; the server
///              (recovered!) replans them onto other sites
///   end        every DAG completes despite losing a site and a server

#include <cstdio>

#include "common/strings.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::exp;

  ScenarioConfig config;
  config.seed = 3;
  config.site_failures = false;  // we stage the failure ourselves
  Scenario scenario(config);

  TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  options.job_timeout = minutes(10);
  Tenant& tenant = scenario.add_tenant("prod", options);

  workflow::WorkloadConfig workload;
  auto generator = scenario.make_generator("ft", workload);
  const auto dags = generator.generate_batch("ft", 6);

  scenario.start();
  scenario.engine().schedule_at(1.0, "submit", [&] {
    for (const auto& dag : dags) tenant.client->submit(dag);
    std::printf("[t=%5.0fs] submitted %zu dags (%zu jobs)\n",
                scenario.engine().now(), dags.size(), dags.size() * 10);
  });

  scenario.engine().schedule_at(minutes(10), "kill-site", [&] {
    grid::Site* site = scenario.grid().find_site("ufloridapg");
    std::printf("[t=%5.0fs] ufloridapg goes down (%d CPUs vanish, jobs lost "
                "silently)\n",
                scenario.engine().now(), site->config().cpus);
    site->go_down();
  });

  std::unique_ptr<core::SphinxServer> recovered;
  scenario.engine().schedule_at(minutes(12), "crash-server", [&] {
    std::printf("[t=%5.0fs] SPHINX server crashes; replaying journal (%zu "
                "records)...\n",
                scenario.engine().now(),
                tenant.server->warehouse().journal().size());
    const db::Journal journal = tenant.server->warehouse().journal();
    const core::ServerConfig server_config = tenant.server->config();
    tenant.server.reset();
    auto result = core::SphinxServer::recover(
        scenario.bus(), scenario.catalog(), scenario.rls(),
        scenario.transfers(), &scenario.monitoring(), server_config, journal);
    if (!result.has_value()) {
      std::printf("recovery failed: %s\n", result.error().to_string().c_str());
      return;
    }
    recovered = std::move(*result);
    recovered->start();
    std::printf("[t=%5.0fs] server recovered: %zu dags, scheduling resumes\n",
                scenario.engine().now(),
                recovered->warehouse().all_dags().size());
  });

  scenario.engine().schedule_at(minutes(40), "repair-site", [&] {
    std::printf("[t=%5.0fs] ufloridapg repaired\n", scenario.engine().now());
    scenario.grid().find_site("ufloridapg")->recover();
  });

  scenario.run(hours(12));

  std::printf("\noutcome after site failure + server crash:\n");
  std::size_t finished = 0;
  for (const auto& outcome : tenant.client->dag_outcomes()) {
    if (outcome.done()) ++finished;
    std::printf("  %-10s %s\n", outcome.name.c_str(),
                outcome.done()
                    ? format_duration(outcome.completion_time()).c_str()
                    : "(did not finish)");
  }
  const auto& tracker = tenant.client->tracker_stats();
  std::printf("tracker: %zu timeouts, %zu held/failed observations\n",
              tracker.timeouts, tracker.held_or_failed);
  if (recovered != nullptr) {
    std::printf("recovered server: %zu plans sent after recovery\n",
                recovered->stats().plans_sent);
  }
  std::printf("%zu/%zu dags completed -> %s\n", finished,
              tenant.client->dag_outcomes().size(),
              finished == dags.size() ? "fault tolerance worked"
                                      : "SOMETHING IS WRONG");
  return finished == dags.size() ? 0 : 1;
}
