#include "obs/export.hpp"

#include <fstream>
#include <iostream>  // sphinx-lint-allow(iostream-include): "-" = stdout export

namespace sphinx::obs {
namespace {

StatusOrError write_text(const std::string& text, const std::string& path) {
  if (path == "-") {
    std::cout << text << std::flush;
    return {};
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error("io_error", "cannot open " + path + " for writing");
  }
  out << text;
  out.flush();
  if (!out) {
    return make_error("io_error", "short write to " + path);
  }
  return {};
}

}  // namespace

StatusOrError write_trace_jsonl(const TraceSink& trace,
                                const std::string& path) {
  return write_text(trace.to_jsonl(), path);
}

StatusOrError write_metrics_json(const MetricSet& metrics,
                                 const std::string& path) {
  return write_text(metrics.to_json(), path);
}

}  // namespace sphinx::obs
