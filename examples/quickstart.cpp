/// Quickstart: submit one workflow DAG to SPHINX and watch it complete.
///
/// Builds the simulated Grid3 testbed, starts one SPHINX server/client
/// pair using the completion-time strategy, submits a single 10-job DAG
/// (the paper's workload unit) and prints what happened to every job.

#include <cstdio>

#include "common/strings.hpp"
#include "exp/scenario.hpp"
#include "workflow/generator.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::exp;

  // 1. Build the grid: 15 heterogeneous sites with background load,
  //    failures, monitoring, WAN links and replica catalogs.
  ScenarioConfig config;
  config.seed = 42;
  Scenario scenario(config);
  std::printf("grid: %zu sites, %d CPUs total\n", scenario.grid().size(),
              scenario.grid().total_cpus());

  // 2. Create a SPHINX deployment (server + client + Condor-G gateway).
  TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  Tenant& tenant = scenario.add_tenant("quickstart", options);

  // 3. Generate the paper's workload unit: a 10-job random DAG whose jobs
  //    take 2-3 input files and one minute of compute each.
  workflow::WorkloadConfig workload;
  auto generator = scenario.make_generator("demo", workload);
  const workflow::Dag dag = generator.generate("demo");
  std::printf("dag '%s': %zu jobs, %zu roots\n", dag.name().c_str(),
              dag.size(), dag.roots().size());

  // 4. Start everything and submit.
  scenario.start();
  scenario.engine().schedule_at(1.0, "submit",
                                [&] { tenant.client->submit(dag); });
  scenario.run(hours(12));

  // 5. Report.
  const auto& outcome = tenant.client->dag_outcomes().front();
  if (!outcome.done()) {
    std::printf("dag did not finish within the horizon!\n");
    return 1;
  }
  std::printf("\ndag finished in %s\n",
              format_duration(outcome.completion_time()).c_str());
  std::printf("%-28s %-12s %-10s %s\n", "job", "site", "attempts", "state");
  for (const auto& job : dag.jobs()) {
    const auto record = tenant.server->warehouse().job(job.id);
    const std::string site = record->site.valid()
                                 ? scenario.grid().site(record->site).name()
                                 : "-";
    std::printf("%-28s %-12s %-10d %s\n", job.name.c_str(), site.c_str(),
                record->attempt, core::to_string(record->state));
  }
  const auto& tracker = tenant.client->tracker_stats();
  std::printf("\ntracker: %zu plans, %zu completions, %zu timeouts\n",
              tracker.plans_received, tracker.completions, tracker.timeouts);
  return 0;
}
