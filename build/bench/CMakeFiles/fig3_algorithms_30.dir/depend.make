# Empty dependencies file for fig3_algorithms_30.
# This may be replaced when dependencies are built.
