#pragma once
/// \file clarens.hpp
/// Clarens-style GSI-authenticated XML-RPC services.
///
/// "SPHINX ... uses the communication protocol named Clarens for
/// incorporating the concept of grid security" (paper section 3.1).  A
/// ClarensService hosts named methods behind an AuthzPolicy; a
/// ClarensClient issues calls and correlates asynchronous responses.
/// Payloads really are serialized and re-parsed XML-RPC, so the wire
/// format is exercised on every call.

#include <functional>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "rpc/gsi.hpp"
#include "rpc/transport.hpp"
#include "rpc/xmlrpc.hpp"

namespace sphinx::rpc {

/// Fault codes used by the service framework itself.
enum class ClarensFault : std::int64_t {
  kParse = 1,        ///< request was not a valid methodCall
  kNoSuchMethod = 2, ///< unknown method name
  kDenied = 3,       ///< authorization failed
  kApplication = 100 ///< method handler reported an error
};

/// Server side: a named endpoint exposing XML-RPC methods.
class ClarensService {
 public:
  /// Handler receives decoded params and the authenticated caller proxy.
  using Method =
      std::function<Expected<XrValue>(const std::vector<XrValue>&, const Proxy&)>;

  ClarensService(MessageBus& bus, std::string endpoint, AuthzPolicy policy);
  ~ClarensService();

  ClarensService(const ClarensService&) = delete;
  ClarensService& operator=(const ClarensService&) = delete;

  /// Registers a method (replaces an existing one of the same name).
  void register_method(const std::string& name, Method method);

  [[nodiscard]] const std::string& endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] std::size_t calls_served() const noexcept { return served_; }
  [[nodiscard]] std::size_t calls_denied() const noexcept { return denied_; }

  /// Mutable policy access (e.g. to ban a subject at runtime).
  [[nodiscard]] AuthzPolicy& policy() noexcept { return policy_; }

 private:
  void handle(const Envelope& request);

  MessageBus& bus_;
  std::string endpoint_;
  AuthzPolicy policy_;
  std::unordered_map<std::string, Method> methods_;
  std::size_t served_ = 0;
  std::size_t denied_ = 0;
};

/// Client side: sends calls, correlates responses, invokes callbacks.
class ClarensClient {
 public:
  /// Callback receives the decoded return value or the fault as an Error
  /// (code = "fault:<code>").
  using Callback = std::function<void(Expected<XrValue>)>;

  ClarensClient(MessageBus& bus, std::string endpoint, Proxy proxy);
  ~ClarensClient();

  ClarensClient(const ClarensClient&) = delete;
  ClarensClient& operator=(const ClarensClient&) = delete;

  /// Issues an asynchronous call.  The callback fires when the response
  /// envelope is delivered.
  void call(const std::string& service, const std::string& method,
            std::vector<XrValue> params, Callback callback);

  /// Replaces the proxy used for subsequent calls (e.g. after renewal).
  void set_proxy(Proxy proxy) noexcept { proxy_ = std::move(proxy); }
  [[nodiscard]] const Proxy& proxy() const noexcept { return proxy_; }

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

 private:
  void handle(const Envelope& response);

  MessageBus& bus_;
  std::string endpoint_;
  Proxy proxy_;
  std::unordered_map<MessageId, Callback> pending_;
};

}  // namespace sphinx::rpc
