/// Figure 7: the four algorithms under resource-usage quota policy, 120
/// DAGs x 10 jobs.
///
/// Paper: "a user's remaining usage quota defines the list of sites
/// available to him ... the results obtained are similar to those
/// without policy", i.e. SPHINX keeps its scheduling efficiency while
/// honouring quotas (eq. 4).

#include "bench_common.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 7",
               "policy-constrained scheduling (120 dags x 10 jobs/dag)");

  auto specs = exp::standard_panel();
  for (auto& spec : specs) {
    spec.options.use_policy = true;
  }
  exp::ExperimentConfig config = paper_config(120);
  // Per-user per-site quota: at most 20 % of the workload's CPU seconds
  // and output bytes may land on any single site.
  config.quota_cpu_fraction = 0.2;
  config.quota_disk_fraction = 0.2;

  exp::Experiment experiment(config);
  const auto results = experiment.run(specs);
  print_results("fig7", results, true);

  for (const auto& r : results) {
    std::printf("%s: policy filtered candidate sets %zu times\n",
                r.label.c_str(), r.policy_rejections);
  }
  std::printf("\npaper: results similar to the unconstrained experiment "
              "(compare with fig5_algorithms_120)\n");
  return 0;
}
