#pragma once
/// \file userlog.hpp
/// Condor-style user log: an append-only record of job events.
///
/// Condor writes a "user log" that tools (and DAGMan itself) tail to
/// follow job progress.  This reproduction keeps the same idea: a
/// UserLog subscribes to a gateway's events, stores them in order, can
/// render the classic numbered-event text form, and answers the queries
/// the Held-job analysis in the paper needs ("the Held jobs may be later
/// analyzed by the grid user to understand the reasons for failure").

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "submit/condor_g.hpp"

namespace sphinx::submit {

/// One log record.
struct UserLogEvent {
  JobId job;
  GatewayJobState state = GatewayJobState::kSubmitted;
  SimTime at = 0.0;
};

class UserLog {
 public:
  /// Appends one event (wire this as/inside a gateway callback).
  void append(const GatewayEvent& event);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const std::vector<UserLogEvent>& events() const noexcept {
    return events_;
  }

  /// All events of one job, in order.
  [[nodiscard]] std::vector<UserLogEvent> history(JobId job) const;

  /// Jobs whose *latest* event is the given state (e.g. every held job).
  [[nodiscard]] std::vector<JobId> jobs_in_state(GatewayJobState state) const;

  /// Time a job spent between two states (first occurrence of each);
  /// negative when the transition never happened.
  [[nodiscard]] Duration time_between(JobId job, GatewayJobState from,
                                      GatewayJobState to) const;

  /// Classic numbered text rendering:
  ///   000 (101.000.000) 07/04 12:00:00 Job submitted
  [[nodiscard]] std::string render() const;

 private:
  std::vector<UserLogEvent> events_;
};

/// Maps a gateway state to the classic Condor user-log event number.
[[nodiscard]] int userlog_event_number(GatewayJobState state) noexcept;

}  // namespace sphinx::submit
