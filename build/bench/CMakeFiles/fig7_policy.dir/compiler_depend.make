# Empty compiler generated dependencies file for fig7_policy.
# This may be replaced when dependencies are built.
