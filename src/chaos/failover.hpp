#pragma once
/// \file failover.hpp
/// The multi-scheduler failover scenario: scheduler crash + client-server
/// partition during shard handoff, byte-diffed against a single-owner
/// baseline.
///
/// N SphinxServer instances run over checkpointed warehouses, one shard
/// each, DAGs routed round-robin (ctrl::shard_of).  Every owner heartbeats
/// its shard's lease to a LeaseCoordinator.  The chaotic run fail-stop
/// kills one scheduler *and* severs the client-server links around the
/// crash; the coordinator's monitor notices the silent lease, declares it
/// expired, and a surviving peer adopts the dead shard from its
/// CheckpointImage + journal suffix, re-arming its rpc_outbox without
/// resending.  The baseline runs the same seed, partition and workload
/// uninterrupted.
///
/// The differential oracle (check_failover_differential) then demands the
/// chaotic run's terminal journals and control-plane-stripped trace equal
/// the baseline's byte-for-byte: adoption must be invisible to the
/// scheduling layer.
///
/// Why this composes deterministically:
///  - shard sweep phases are staggered (ServerConfig::sweep_phase), so no
///    two shards ever sweep at one engine timestamp and recovery cannot
///    reorder equal-time events across shards;
///  - ctrl traffic draws latency from the dedicated "bus/ctrl" stream and
///    skips probabilistic faults, so its (by-design different) volume
///    never shifts a core RNG draw;
///  - the partition opens >= one max bus latency before the crash and
///    closes after adoption, so every pre-partition send delivers in both
///    runs and no send ever targets the dark endpoint.

#include <cstddef>
#include <cstdint>
#include <string>

#include "chaos/oracle.hpp"
#include "common/time.hpp"
#include "core/state.hpp"

namespace sphinx::chaos {

/// One failover experiment.  Defaults are tuned so the dead window
/// [crash_at, adoption] sits strictly inside the partition window and
/// ends before any restored retry timer or resumed sweep fires.
struct FailoverConfig {
  std::uint64_t seed = 1;
  std::size_t shards = 2;
  std::size_t dag_count = 4;
  int jobs_per_dag = 6;
  core::Algorithm algorithm = core::Algorithm::kCompletionTime;
  /// Per-shard checkpoint policy (record-triggered).
  std::size_t checkpoint_every = 48;
  /// Fail-stop time of the crashed scheduler.  Just after the shard's
  /// sweep at 120.0, so the dead window holds in-flight outbox state.
  SimTime crash_at = 120.1;
  std::size_t crash_shard = 0;
  /// Client-server partition window.  Must open at least one maximum bus
  /// latency before crash_at and close after adoption.
  SimTime partition_start = 119.8;
  SimTime partition_end = 124.8;
  Duration heartbeat_period = 1.0;
  Duration lease_ttl = 3.0;
  Duration monitor_period = 1.0;
  SimTime horizon = hours(12);
};

/// Verdicts and artifacts of one chaotic/baseline pair.
struct FailoverRunResult {
  std::uint64_t seed = 0;
  OracleReport invariants;       ///< chaotic run judged on its own
  OracleReport differential;     ///< chaotic vs baseline, failover-stripped
  std::size_t adoptions = 0;     ///< chaotic run's successful adoptions
  std::size_t expirations = 0;   ///< leases the chaotic run declared dead
  std::size_t baseline_adoptions = 0;  ///< must stay 0
  std::size_t journal_records = 0;     ///< chaotic run, summed over shards
  SimTime stopped_at = 0.0;      ///< chaotic run's stop time
  std::uint64_t digest = 0;      ///< fnv1a over chaotic journals + trace

  [[nodiscard]] bool ok() const noexcept {
    return invariants.ok && differential.ok && adoptions > 0 &&
           baseline_adoptions == 0;
  }
  [[nodiscard]] std::string violation() const;
};

/// Runs the chaotic and baseline simulations and applies the oracles.
[[nodiscard]] FailoverRunResult run_failover_pair(const FailoverConfig& config);

}  // namespace sphinx::chaos
