// sphinx_record: run one failure-enabled scenario and export the flight
// recorder's trace.jsonl + metrics.json.
//
//   sphinx_record [--seed N] [--dags K] [--trace PATH] [--metrics PATH]
//
// Same seed -> byte-identical outputs; tools/check.sh runs this twice
// and diffs the files as the determinism gate.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/runner.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  int dags = 4;
  std::string trace_path = "trace.jsonl";
  std::string metrics_path = "metrics.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--seed" && value != nullptr) {
      seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--dags" && value != nullptr) {
      dags = std::atoi(value);
      ++i;
    } else if (arg == "--trace" && value != nullptr) {
      trace_path = value;
      ++i;
    } else if (arg == "--metrics" && value != nullptr) {
      metrics_path = value;
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: sphinx_record [--seed N] [--dags K] "
                   "[--trace PATH] [--metrics PATH]\n");
      return 2;
    }
  }

  using namespace sphinx;
  exp::ExperimentConfig config;
  config.scenario.seed = seed;
  config.scenario.site_failures = true;   // exercise outage/repair tracing
  config.scenario.background_load = true;
  config.dag_count = dags;
  config.horizon = hours(12);
  config.trace_path = trace_path;
  config.metrics_path = metrics_path;

  exp::TenantOptions with_feedback;
  exp::TenantOptions no_feedback;
  no_feedback.algorithm = core::Algorithm::kRoundRobin;
  no_feedback.use_feedback = false;
  exp::Experiment experiment(config);
  const auto results = experiment.run(
      {{"feedback", with_feedback}, {"no-feedback", no_feedback}});

  const auto& recorder = experiment.recorder();
  std::printf("sphinx_record: seed=%llu dags=%d tenants=%zu events=%zu\n",
              static_cast<unsigned long long>(seed), dags, results.size(),
              recorder.trace().size());
  std::printf("  trace   -> %s\n  metrics -> %s\n", trace_path.c_str(),
              metrics_path.c_str());
  return 0;
}
