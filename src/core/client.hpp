#pragma once
/// \file client.hpp
/// The SPHINX client: lightweight scheduling agent + job tracker.
///
/// "The client is a lightweight portable scheduling agent that represents
/// the server for processing scheduling requests" (paper section 3.1).
/// It submits abstract DAGs to the server, receives per-job execution
/// plans, turns them into Condor-G submissions, and runs the *job
/// tracker*: watching execution status, reporting completion times back
/// to the server, cancelling jobs that exceed their timeout and
/// requesting replanning -- the mechanism behind every fault-tolerance
/// result in the paper (Figures 2 and 8).

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "core/codec.hpp"
#include "obs/recorder.hpp"
#include "rpc/clarens.hpp"
#include "submit/condor_g.hpp"
#include "workflow/dag.hpp"

namespace sphinx::core {

struct ClientConfig {
  std::string endpoint = "sphinx-client";
  std::string server = "sphinx-server";
  UserId user = UserId(1);
  std::string vo = "uscms";
  /// Tracker timeout: a job that has made no visible progress this long
  /// after submission is cancelled and replanning is requested.  A job
  /// observed staging or computing on a responsive site is granted up to
  /// `max_timeout_extensions` further periods before the hard kill --
  /// slow is not dead, and cancelling a half-staged job only to restage
  /// it elsewhere makes congestion worse.
  Duration job_timeout = minutes(30);
  int max_timeout_extensions = 3;
  /// Straggler defense: upper bound on speculative attempts this client
  /// will track concurrently.  The server's own per-DAG/global budgets
  /// are tighter; this is the cross-layer contract check -- exceeding it
  /// means the server's budget enforcement is broken.
  std::size_t speculation_budget = 8;
};

/// Completion record for one DAG (client-side timing).
struct DagOutcome {
  DagId id;
  std::string name;
  SimTime submitted_at = 0.0;
  SimTime finished_at = kNever;
  SimTime deadline = kNever;  ///< QoS deadline; kNever = best effort
  [[nodiscard]] bool done() const noexcept { return finished_at < kNever; }
  [[nodiscard]] Duration completion_time() const noexcept {
    return finished_at - submitted_at;
  }
  /// True when a QoS deadline existed and was met.
  [[nodiscard]] bool deadline_met() const noexcept {
    return deadline < kNever && done() && finished_at <= deadline;
  }
};

/// Tracker counters (Figure 8's timeout counts come from here).
struct TrackerStats {
  std::size_t plans_received = 0;
  std::size_t submissions = 0;
  std::size_t timeouts = 0;          ///< tracker-initiated cancellations
  std::size_t extensions = 0;        ///< timeouts deferred due to progress
  std::size_t held_or_failed = 0;    ///< site-initiated failures observed
  std::size_t completions = 0;
  std::size_t persisted_outputs = 0; ///< final outputs sent to archive
  /// Re-delivered plans skipped by the (job, attempt) duplicate guard; a
  /// duplicate must never reach the gateway as a second submission.
  std::size_t duplicate_plans = 0;
  /// Re-delivered dag_done notifications; the recorded finish time of
  /// the first delivery is kept.
  std::size_t duplicate_dag_done = 0;
  /// Straggler defense: speculative (racing) plans accepted.
  std::size_t speculative_plans = 0;
  /// cancel_attempt requests that found a live attempt to kill (the
  /// loser of a first-completion-wins race).
  std::size_t race_cancels = 0;
  /// Completions of a racing attempt observed after the sibling already
  /// completed; arbitrated away (no stats, no report).
  std::size_t duplicate_completions = 0;
};

class SphinxClient {
 public:
  SphinxClient(rpc::MessageBus& bus, submit::CondorG& gateway,
               ClientConfig config, rpc::Proxy proxy);
  ~SphinxClient();

  SphinxClient(const SphinxClient&) = delete;
  SphinxClient& operator=(const SphinxClient&) = delete;

  /// Sends an abstract DAG to the server for scheduling.  Higher
  /// `priority` requests are planned first when resources are contended;
  /// a finite `deadline` (absolute sim time) requests QoS: among equal
  /// priorities the server plans earliest-deadline DAGs first.
  void submit(const workflow::Dag& dag, double priority = 0.0,
              SimTime deadline = kNever);

  /// DAGs with a deadline that finished on time / in total.
  [[nodiscard]] std::pair<std::size_t, std::size_t> deadline_hits() const;

  // --- observability ----------------------------------------------------
  [[nodiscard]] const std::vector<DagOutcome>& dag_outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t dags_finished() const noexcept;
  [[nodiscard]] bool all_dags_finished() const noexcept;
  /// Average DAG completion time over finished DAGs (Figures 2-5a, 7a).
  [[nodiscard]] double avg_dag_completion() const;
  /// Average job execution time over completed attempts (Figures 3-5b).
  [[nodiscard]] double avg_job_execution() const;
  /// Average idle (queuing) time over completed attempts (Figures 3-5b).
  [[nodiscard]] double avg_job_idle() const;
  [[nodiscard]] const TrackerStats& tracker_stats() const noexcept {
    return tracker_;
  }
  /// Per-site completed-job counts and mean completion times as this
  /// client observed them (Figure 6).
  struct SiteObservation {
    std::size_t completed = 0;
    RunningStats completion_times;
  };
  [[nodiscard]] const std::unordered_map<SiteId, SiteObservation>&
  site_observations() const noexcept {
    return per_site_;
  }

  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }

  /// Attaches a flight recorder: tracker timeouts, extensions and
  /// completion observations are traced under this client's endpoint.
  /// Observation only.
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Jobs currently tracked (terminal entries are erased as their
  /// lifecycle ends, so this does not grow with run length).
  [[nodiscard]] std::size_t tracked_jobs() const noexcept {
    return tracked_.size();
  }

  /// Distinct (job, attempt) pairs ever handed to the gateway.  On a
  /// healthy run this equals tracker_stats().submissions -- the lossy
  /// smoke gate asserts exactly that to prove no plan executed twice.
  [[nodiscard]] std::size_t unique_submissions() const noexcept {
    return submitted_attempts_.size();
  }

 private:
  struct Tracked {
    ExecutionPlan plan;
    SimTime submitted_at = 0.0;
    SimTime started_at = kNever;
    sim::EventHandle timeout;
    int extensions = 0;
    bool terminal = false;
  };

  /// Tracker entries are keyed per (job, attempt): a speculation race has
  /// two live attempts of one JobId at once.
  using Key = std::pair<std::uint64_t, int>;

  Expected<rpc::XrValue> handle_execute_plan(
      const std::vector<rpc::XrValue>& params);
  Expected<rpc::XrValue> handle_dag_done(
      const std::vector<rpc::XrValue>& params);
  Expected<rpc::XrValue> handle_cancel_attempt(
      const std::vector<rpc::XrValue>& params);
  void on_gateway_event(const submit::GatewayEvent& event);
  void on_timeout(JobId job, int attempt);
  void report(const TrackerReport& report);
  void finish_tracking(Tracked& tracked);
  void erase_tracked(Key key);

  rpc::MessageBus& bus_;
  submit::CondorG& gateway_;
  ClientConfig config_;
  std::unique_ptr<rpc::ClarensService> service_;
  std::unique_ptr<rpc::ClarensClient> rpc_;
  std::map<Key, Tracked> tracked_;
  /// Jobs whose first completion has already been observed; a sibling
  /// attempt completing later is the race loser and is arbitrated away.
  std::unordered_set<std::uint64_t> completed_jobs_;
  /// Speculative attempts currently tracked, for the budget contract.
  std::size_t racing_now_ = 0;  // sphinx-lint: derived(handle_execute_plan, erase_tracked)
  /// Every (job, attempt) accepted for submission, for the duplicate-plan
  /// guard.  Legitimate replans always carry a fresh attempt number, so
  /// a repeat pair can only be a duplicate delivery.
  std::set<std::pair<std::uint64_t, int>> submitted_attempts_;
  std::unordered_map<DagId, std::size_t> outcome_index_;
  std::vector<DagOutcome> outcomes_;
  TrackerStats tracker_;
  RunningStats exec_times_;
  RunningStats idle_times_;
  std::unordered_map<SiteId, SiteObservation> per_site_;
  obs::Recorder* recorder_ = nullptr;
  Logger log_{"sphinx-client"};
};

}  // namespace sphinx::core
