# Empty dependencies file for ablation_timeout.
# This may be replaced when dependencies are built.
