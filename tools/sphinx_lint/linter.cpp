/// \file linter.cpp
/// Rule orchestration: catalog assembly, per-file driving, and the
/// cross-file phase (derived-state annotations across header/source
/// pairs, the rng stream registry and its duplicate check).  The rules
/// themselves live one family per translation unit under rules/.

#include "linter.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "analyzer.hpp"
#include "rule.hpp"

namespace sphinx::lint {
namespace {

[[nodiscard]] bool rule_selected(const std::vector<std::string>& only,
                                 std::string_view id) {
  if (only.empty()) return true;
  return std::find(only.begin(), only.end(), id) != only.end();
}

void run_rules(const FileContext& ctx, const std::vector<std::string>& only,
               std::vector<Finding>& findings) {
  const Reporter reporter(ctx, findings);
  for (const Rule& rule : rule_catalog()) {
    if (rule.check == nullptr) continue;
    if (!rule_selected(only, rule.id)) continue;
    rule.check(ctx, reporter);
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

/// Path stem shared by a header/source pair: "src/core/warehouse" for
/// both warehouse.hpp and warehouse.cpp.
[[nodiscard]] std::string stem_of(const std::string& rel_path) {
  const std::size_t dot = rel_path.rfind('.');
  return dot == std::string::npos ? rel_path : rel_path.substr(0, dot);
}

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string Finding::to_string() const {
  return path + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<Rule>& rule_catalog() {
  static const std::vector<Rule> kCatalog = [] {
    std::vector<Rule> all;
    for (auto family :
         {&determinism_rules, &status_rules, &hygiene_rules,
          &ordered_escape_rules, &rng_stream_rules, &derived_state_rules,
          &observe_only_rules}) {
      for (Rule& rule : family()) all.push_back(rule);
    }
    return all;
  }();
  return kCatalog;
}

std::vector<std::pair<std::string, std::string>> rule_list() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Rule& rule : rule_catalog()) {
    out.emplace_back(rule.id, rule.summary);
  }
  return out;
}

std::string rule_explain(const std::string& rule) {
  for (const Rule& entry : rule_catalog()) {
    if (rule == entry.id) return entry.explain;
  }
  return "";
}

std::vector<Finding> lint_source(std::string_view content,
                                 const std::string& rel_path) {
  return lint_source_rules(content, rel_path, {});
}

std::vector<Finding> lint_source_rules(std::string_view content,
                                       const std::string& rel_path,
                                       const std::vector<std::string>& only) {
  const FileContext ctx = parse_file(content, rel_path);
  std::vector<Finding> findings;
  run_rules(ctx, only, findings);
  sort_findings(findings);
  return findings;
}

TreeReport analyze_tree(const std::filesystem::path& root,
                        const std::vector<std::string>& entries,
                        const std::vector<std::string>& only) {
  namespace fs = std::filesystem;
  TreeReport report;

  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh";
  };
  // The linter's own rule fixtures are deliberate violations; never
  // treat them as part of a tree under analysis (they are still
  // lintable when a fixture directory is the scan root itself, which is
  // how the per-rule ctest cases drive them).
  const auto fixture = [&root](const fs::path& p) {
    return fs::relative(p, root).generic_string().find("fixtures/") !=
           std::string::npos;
  };

  std::vector<fs::path> files;
  for (const std::string& entry : entries) {
    const fs::path base = root / entry;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
    } else if (fs::is_directory(base, ec)) {
      for (auto it = fs::recursive_directory_iterator(base, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path()) &&
            !fixture(it->path())) {
          files.push_back(it->path());
        }
      }
    } else {
      report.errors.push_back("no such file or directory: " + base.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Phase 1: parse everything.
  std::vector<FileContext> contexts;
  contexts.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read " + file.string());
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(file, root).generic_string();  // '/'-separated
    contexts.push_back(parse_file(buffer.str(), rel));
  }

  // Phase 2: share declaration knowledge across header/source pairs
  // (same path stem) -- derived-state annotations and ordered-escape
  // taint both live on member declarations in the .hpp but matter in
  // the loops of the .cpp.
  std::map<std::string, std::map<std::string, std::set<std::string>>> by_stem;
  std::map<std::string, std::set<std::string>> taint_vars_by_stem;
  std::map<std::string, std::set<std::string>> taint_fns_by_stem;
  for (const FileContext& ctx : contexts) {
    const std::string stem = stem_of(ctx.rel_path);
    for (const auto& [member, fns] : ctx.derived) {
      by_stem[stem][member] = fns;
    }
    taint_vars_by_stem[stem].insert(ctx.tainted_vars.begin(),
                                    ctx.tainted_vars.end());
    taint_fns_by_stem[stem].insert(ctx.tainted_fns.begin(),
                                   ctx.tainted_fns.end());
  }
  for (FileContext& ctx : contexts) {
    const std::string stem = stem_of(ctx.rel_path);
    const auto it = by_stem.find(stem);
    if (it != by_stem.end()) {
      for (const auto& [member, fns] : it->second) {
        ctx.derived.emplace(member, fns);  // own annotations win
      }
    }
    const auto vars = taint_vars_by_stem.find(stem);
    if (vars != taint_vars_by_stem.end()) {
      ctx.tainted_vars.insert(vars->second.begin(), vars->second.end());
    }
    const auto fns = taint_fns_by_stem.find(stem);
    if (fns != taint_fns_by_stem.end()) {
      ctx.tainted_fns.insert(fns->second.begin(), fns->second.end());
    }
  }

  // Phase 3: per-file rules + stream extraction.
  for (const FileContext& ctx : contexts) {
    run_rules(ctx, only, report.findings);
    for (StreamUse& use : extract_streams(ctx)) {
      report.streams.push_back(std::move(use));
    }
  }
  std::sort(report.streams.begin(), report.streams.end(),
            [](const StreamUse& a, const StreamUse& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });

  // Phase 4: duplicate stream names across modules.
  if (rule_selected(only, "rng-stream-duplicate")) {
    std::map<std::string, std::set<std::string>> modules_of;
    for (const StreamUse& use : report.streams) {
      modules_of[use.name].insert(use.module);
    }
    std::map<std::string, const FileContext*> ctx_of;
    for (const FileContext& ctx : contexts) ctx_of[ctx.rel_path] = &ctx;
    for (const StreamUse& use : report.streams) {
      const std::set<std::string>& modules = modules_of[use.name];
      if (modules.size() < 2) continue;
      const FileContext* ctx = ctx_of[use.path];
      if (ctx != nullptr && ctx->allowed(use.line, "rng-stream-duplicate")) {
        continue;
      }
      std::string others;
      for (const std::string& m : modules) {
        if (m == use.module) continue;
        if (!others.empty()) others += ", ";
        others += m;
      }
      report.findings.push_back(Finding{
          use.path, use.line, "rng-stream-duplicate",
          "stream '" + use.name + "' is also declared in module(s) " +
              others +
              "; two modules sharing a label share a generator and "
              "entangle their draw sequences -- rename one"});
    }
  }

  sort_findings(report.findings);
  return report;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& entries,
                               std::vector<std::string>* errors) {
  TreeReport report = analyze_tree(root, entries);
  if (errors != nullptr) {
    for (std::string& error : report.errors) {
      errors->push_back(std::move(error));
    }
  }
  return std::move(report.findings);
}

std::string findings_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out += ",";
    out += "\n  {\"path\": \"" + json_escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string rng_registry_markdown(const std::vector<StreamUse>& streams) {
  std::string out;
  out +=
      "# RNG stream registry\n"
      "\n"
      "Every `seeds.stream(\"...\")` label in the tree, extracted by\n"
      "`sphinx_lint --rng-registry`.  Do not edit by hand: tools/check.sh\n"
      "regenerates this file and fails on drift.\n"
      "\n"
      "A *family* (name ending in `*`) is a literal prefix plus a runtime\n"
      "suffix -- one independent stream per entity.  Stream names are\n"
      "unique per module (rule rng-stream-duplicate); at runtime, SeedTree\n"
      "throws ContractViolation if one instance hands out the same label\n"
      "twice.\n"
      "\n"
      "| stream | kind | module | declared in |\n"
      "|---|---|---|---|\n";
  std::string last_key;
  for (const StreamUse& use : streams) {
    const std::string key = use.name + "\n" + use.path;
    if (key == last_key) continue;  // several uses on one line / same file
    last_key = key;
    out += "| `" + use.name + "` | " + (use.family ? "family" : "literal") +
           " | " + use.module + " | " + use.path + " |\n";
  }
  return out;
}

}  // namespace sphinx::lint
