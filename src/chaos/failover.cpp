#include "chaos/failover.hpp"

#include <exception>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "ctrl/coordinator.hpp"
#include "ctrl/heartbeat.hpp"
#include "ctrl/shard.hpp"
#include "exp/scenario.hpp"

namespace sphinx::chaos {
namespace {

constexpr SimTime kFirstSubmitAt = 10.0;
constexpr Duration kSubmitSpacing = 15.0;
/// First-beat offset: off the integer grid the monitor (x.5) and the
/// sweeps (multiples of 2.5) occupy, so no ctrl event ever shares an
/// engine timestamp with a core one.
constexpr Duration kHeartbeatPhase = 0.25;
constexpr Duration kMonitorPhase = 0.5;

struct FailoverArtifacts {
  RunArtifacts run;
  std::size_t adoptions = 0;
  std::size_t expirations = 0;
};

FailoverArtifacts run_once(const FailoverConfig& config, bool with_crash) {
  SPHINX_PRECONDITION(config.shards >= 2,
                      "failover needs a surviving peer to adopt the shard");
  SPHINX_PRECONDITION(config.crash_shard < config.shards,
                      "crash_shard must name one of the shards");

  exp::ScenarioConfig scenario_config;
  scenario_config.seed = config.seed;
  // The failover harness owns all misbehaviour: no seeded site failures,
  // and the only network fault is the planned partition window, applied
  // to the chaotic AND the baseline run so the pair differs only in the
  // crash itself.
  scenario_config.site_failures = false;
  scenario_config.background_load = false;
  {
    rpc::LinkFaultRule rule;
    rule.from_prefix = "sphinx-client";
    rule.to_prefix = "sphinx-server";
    rule.start = config.partition_start;
    rule.end = config.partition_end;
    rule.partition = true;
    scenario_config.network_faults.rules.push_back(rule);
  }
  exp::Scenario scenario(scenario_config);

  // One tenant per shard, sweep phases staggered across the period so no
  // two shards sweep at the same engine timestamp (see file comment).
  std::unordered_map<std::string, std::size_t> shard_index;
  for (std::size_t i = 0; i < config.shards; ++i) {
    exp::TenantOptions options;
    options.algorithm = config.algorithm;
    options.checkpoint_every_records = config.checkpoint_every;
    options.sweep_phase =
        static_cast<double>(i) *
        (core::ServerConfig{}.sweep_period / static_cast<double>(config.shards));
    scenario.add_tenant("failover#" + std::to_string(i), options);
    shard_index.emplace(ctrl::shard_name(i), i);
  }

  ctrl::CoordinatorConfig coordinator_config;
  coordinator_config.lease_ttl = config.lease_ttl;
  coordinator_config.monitor_period = config.monitor_period;
  coordinator_config.monitor_phase = kMonitorPhase;
  ctrl::LeaseCoordinator coordinator(scenario.bus(), coordinator_config);
  coordinator.set_recorder(&scenario.recorder());

  const rpc::Proxy ctrl_proxy(
      rpc::Identity{"/CN=sphinx-control-plane", "/CN=iGOC CA"},
      coordinator_config.control_vo, {}, scenario.engine().now(),
      hours(24 * 365));

  ctrl::HeartbeatConfig heartbeat_config;
  heartbeat_config.coordinator = coordinator_config.endpoint;
  heartbeat_config.period = config.heartbeat_period;
  heartbeat_config.phase = kHeartbeatPhase;

  std::vector<std::unique_ptr<ctrl::HeartbeatAgent>> agents(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    const std::uint64_t epoch =
        coordinator.grant(ctrl::shard_name(i), ctrl::scheduler_name(i));
    agents[i] = std::make_unique<ctrl::HeartbeatAgent>(
        scenario.bus(), ctrl::shard_name(i), ctrl::scheduler_name(i), epoch,
        heartbeat_config, ctrl_proxy);
  }

  std::string failure;
  coordinator.set_adopt_handler(
      [&](const std::string& shard, const std::string& /*dead_owner*/,
          const std::string& /*new_owner*/) -> StatusOrError {
        const std::size_t idx = shard_index.at(shard);
        // Mark the deliberate ownership transfer before the endpoint
        // comes back: any drop in the (here instantaneous) window reads
        // "endpoint_handoff", not "endpoint_unregistered".
        scenario.bus().expect_handoff("sphinx-server/failover#" +
                                      std::to_string(idx));
        auto recovered = scenario.recover_server(idx);
        if (!recovered.ok() && failure.empty()) {
          failure = "adoption failed: " + recovered.error().to_string();
        }
        return recovered;
      });
  coordinator.set_adopted_callback([&](const std::string& shard,
                                       const std::string& new_owner,
                                       std::uint64_t epoch) {
    // The adopter starts heartbeating the shard under the new epoch; the
    // dead owner's agent object is already gone (the crash destroyed it).
    const std::size_t idx = shard_index.at(shard);
    agents[idx] = std::make_unique<ctrl::HeartbeatAgent>(
        scenario.bus(), shard, new_owner, epoch, heartbeat_config, ctrl_proxy);
    agents[idx]->start();
  });

  // Workload: DAGs routed round-robin across the shards.
  workflow::WorkloadConfig workload;
  workload.jobs_per_dag = config.jobs_per_dag;
  auto generator = scenario.make_generator("failover", workload);
  const std::vector<workflow::Dag> dags =
      generator.generate_batch("failover", config.dag_count);

  scenario.start();
  coordinator.start();
  for (auto& agent : agents) agent->start();

  for (std::size_t k = 0; k < dags.size(); ++k) {
    const workflow::Dag& dag = dags[k];
    const std::size_t shard = ctrl::shard_of(k, config.shards);
    scenario.engine().schedule_at(
        kFirstSubmitAt + static_cast<double>(k) * kSubmitSpacing,
        "submit:" + dag.name(), [&scenario, &dag, shard] {
          scenario.tenants()[shard].client->submit(dag);
        });
  }

  if (with_crash) {
    scenario.engine().schedule_at(
        config.crash_at, "failover:crash", [&scenario, &agents, &config] {
          // Fail-stop of the whole scheduler process: the server AND its
          // heartbeat agent die together -- the ensuing lease silence is
          // exactly what the monitor detects.
          agents[config.crash_shard].reset();
          scenario.crash_server(config.crash_shard);
        });
  }

  const SimTime stopped = scenario.run(config.horizon);

  FailoverArtifacts out;
  out.run.stopped_at = stopped;
  out.run.invariant_violation = failure;
  out.adoptions = coordinator.stats().adoptions;
  out.expirations = coordinator.stats().expirations;
  for (const exp::Tenant& tenant : scenario.tenants()) {
    out.run.dags_total += tenant.client->dag_outcomes().size();
    out.run.dags_finished += tenant.client->dags_finished();
    if (tenant.server == nullptr) {
      if (out.run.invariant_violation.empty()) {
        out.run.invariant_violation =
            "shard " + tenant.label + " was never adopted";
      }
      continue;
    }
    out.run.journal_text += "== " + tenant.label + " ==\n";
    out.run.journal_text += tenant.server->warehouse().journal().serialize();
    out.run.journal_records += static_cast<std::size_t>(
        tenant.server->warehouse().journal().next_seq());
    out.run.journal_live_records += tenant.server->warehouse().journal().size();
  }
  out.run.trace_jsonl = scenario.recorder().trace().to_jsonl();
  if (out.run.invariant_violation.empty()) {
    try {
      for (const exp::Tenant& tenant : scenario.tenants()) {
        tenant.server->warehouse().check_invariants();
      }
      coordinator.leases().check_invariants();
      scenario.engine().check_invariants();
    } catch (const std::exception& error) {
      out.run.invariant_violation = error.what();
    }
  }
  return out;
}

}  // namespace

std::string FailoverRunResult::violation() const {
  if (!invariants.ok) return invariants.violation;
  if (!differential.ok) return differential.violation;
  if (adoptions == 0) return "no shard adoption occurred in the chaotic run";
  if (baseline_adoptions != 0) return "baseline run adopted a shard";
  return "";
}

FailoverRunResult run_failover_pair(const FailoverConfig& config) {
  FailoverRunResult result;
  result.seed = config.seed;

  const FailoverArtifacts chaotic = run_once(config, true);
  const FailoverArtifacts baseline = run_once(config, false);

  result.invariants = check_run_invariants(chaotic.run);
  result.differential = check_failover_differential(chaotic.run, baseline.run);
  result.adoptions = chaotic.adoptions;
  result.expirations = chaotic.expirations;
  result.baseline_adoptions = baseline.adoptions;
  result.journal_records = chaotic.run.journal_records;
  result.stopped_at = chaotic.run.stopped_at;
  result.digest = fnv1a(chaotic.run.trace_jsonl, fnv1a(chaotic.run.journal_text));
  return result;
}

}  // namespace sphinx::chaos
