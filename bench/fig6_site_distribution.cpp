/// Figure 6: site-wise distribution of completed jobs vs average job
/// completion time, 120 DAGs x 10 jobs.
///
/// Paper: (a) under completion-time-based scheduling the number of jobs
/// a site receives is inversely proportional to its average completion
/// time; (b) under number-of-CPUs scheduling no such relationship holds.
/// The rank correlation printed at the end quantifies the shape.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

namespace {

/// Spearman rank correlation between per-site job counts and average
/// completion times (sites with zero jobs excluded).
double rank_correlation(const std::vector<sphinx::exp::SiteFigure>& sites) {
  std::vector<std::pair<double, double>> points;
  for (const auto& site : sites) {
    if (site.completed > 0) {
      points.emplace_back(static_cast<double>(site.completed),
                          site.avg_completion);
    }
  }
  const std::size_t n = points.size();
  if (n < 3) return 0.0;
  const auto ranks = [&](auto key) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return key(points[a]) < key(points[b]);
    });
    std::vector<double> rank(n);
    for (std::size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<double>(i);
    return rank;
  };
  const auto rx = ranks([](const auto& p) { return p.first; });
  const auto ry = ranks([](const auto& p) { return p.second; });
  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
  }
  const double nd = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nd * (nd * nd - 1.0));
}

}  // namespace

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Figure 6",
               "job distribution vs avg completion time per site "
               "(120 dags x 10 jobs/dag)");

  std::vector<exp::TenantSpec> specs;
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  specs.push_back({"completion-time", options});
  options.algorithm = core::Algorithm::kNumCpus;
  specs.push_back({"num-cpus", options});

  exp::Experiment experiment(paper_config(120));
  const auto results = experiment.run(specs);

  for (const auto& result : results) {
    std::printf("\n%s", exp::render_site_distribution(
                            "Completed jobs vs avg completion time", result)
                            .c_str());
    std::printf("rank correlation(jobs, avg completion) = %.2f\n",
                rank_correlation(result.per_site));
  }
  std::printf("\npaper: (a) completion-time shows an inverse relationship "
              "(strongly negative correlation);\n       (b) num-cpus does "
              "not follow the trend\n");
  return 0;
}
