/// \file escape.cpp
/// Fixture: hash-order iteration escaping into a sequence and into a
/// floating-point accumulation.

#include "escape.hpp"

namespace fixture {

void Tracker::snapshot(std::vector<std::uint64_t>& out) const {
  for (const auto& [id, rate] : active_) {
    out.push_back(id);  // escape: sequence order = hash order
  }
}

double Tracker::drain() {
  double total = 0.0;
  for (const auto& [id, rate] : active_) {
    total += rate * 0.5;  // escape: float sum order = hash order
  }
  return total;
}

}  // namespace fixture
