#pragma once
/// \file server.hpp
/// The SPHINX server: control process composing the scheduling modules.
///
/// The server hosts a Clarens endpoint with two methods -- a client
/// submits abstract DAGs via `sphinx.submit_dag` and streams tracker
/// reports via `sphinx.report` -- and runs a periodic *control process*
/// that moves DAGs and jobs through the scheduling automaton:
///
///   DAG:  received --reducer--> planning --all jobs done--> finished
///   job:  unplanned --planner--> planned --client reports--> submitted
///         --> running --> completed | cancelled/held --> unplanned again
///
/// The work itself is done by the paper's modules, each its own class:
/// MessageHandler (RPC ingress + report application), DagReducer, and
/// Planner (strategy + prediction + policy filter).  They communicate
/// through the DataWarehouse's dirty-DAG work queue: every transition
/// that creates work enqueues the affected DAG, and sweep() drains the
/// queue and walks each DAG through the stages -- O(changed work), not
/// O(total state).  The server itself only owns the wiring: the RPC
/// endpoint, the outgoing client channel, and the periodic sweep.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "core/codec.hpp"
#include "core/config.hpp"
#include "core/dag_reducer.hpp"
#include "core/message_handler.hpp"
#include "core/planner.hpp"
#include "core/state.hpp"
#include "core/straggler.hpp"
#include "core/warehouse.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "monitor/service.hpp"
#include "obs/recorder.hpp"
#include "rpc/clarens.hpp"
#include "sim/engine.hpp"

namespace sphinx::core {

class SphinxServer {
 public:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config);

  /// Reconstructs a server from a crashed instance's journal (paper:
  /// "easily recoverable from internal component failures").  In-flight
  /// client connections resume transparently because all state that
  /// matters lives in the warehouse; the recovered warehouse rebuilds
  /// the work queues, so the control process resumes exactly where the
  /// crashed one stopped.
  static Expected<std::unique_ptr<SphinxServer>> recover(
      rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
      data::ReplicaLocationService& rls, data::TransferService& transfers,
      const monitor::MonitoringService* monitoring, ServerConfig config,
      const db::Journal& journal);

  /// Checkpoint-aware recovery: restores the crashed instance's last
  /// checkpoint image and replays only the journal suffix past it --
  /// O(state + suffix) instead of O(history).  Required once the journal
  /// has been compacted (the full-replay overload above refuses a
  /// journal whose base sequence is non-zero).
  static Expected<std::unique_ptr<SphinxServer>> recover(
      rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
      data::ReplicaLocationService& rls, data::TransferService& transfers,
      const monitor::MonitoringService* monitoring, ServerConfig config,
      const CheckpointImage& checkpoint, const db::Journal& journal);

  ~SphinxServer();
  SphinxServer(const SphinxServer&) = delete;
  SphinxServer& operator=(const SphinxServer&) = delete;

  /// Starts the control process.
  void start();
  /// Starts the control process with its first sweep at absolute time
  /// `t` -- how a recovered server resumes the crashed instance's exact
  /// sweep phase (see next_sweep_at()).
  void start_at(SimTime t);
  /// Stops the control process (simulating an internal failure).
  void stop();
  /// Absolute time of the next control sweep (meaningful while started).
  [[nodiscard]] SimTime next_sweep_at() const noexcept;

  /// Arms a fail-stop trigger for chaos testing: the first time the
  /// journal's total appended records (next_seq -- immune to compaction)
  /// reaches `journal_records` at a check point, `hook` fires exactly
  /// once.  With `mid_checkpoint` false the check points are event
  /// boundaries (end of a sweep or RPC handler); with it true the hook
  /// instead fires inside the next eligible checkpoint, between image
  /// publication and journal truncation -- the window where a crash
  /// leaves a published image alongside an uncompacted journal.  The
  /// hook must NOT destroy the server synchronously -- it is called from
  /// inside server code; schedule the teardown on the engine at the
  /// current time instead.  Passing nullptr disarms.
  void arm_crash_hook(std::size_t journal_records, std::function<void()> hook,
                      bool mid_checkpoint = false);

  /// One control-process sweep (also callable directly from tests):
  /// drains the dirty-DAG queue and walks each drained DAG through the
  /// reducer and planner stages.
  void sweep();

  [[nodiscard]] DataWarehouse& warehouse() noexcept { return *warehouse_; }
  [[nodiscard]] const DataWarehouse& warehouse() const noexcept {
    return *warehouse_;
  }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return config_.endpoint;
  }

  /// Sets a usage quota (administrative interface; also reachable over
  /// RPC via `sphinx.set_quota`).
  void set_quota(UserId user, SiteId site, const std::string& resource,
                 double limit);

  /// Attaches a flight recorder: sweeps, DAG arrivals/finishes and plan
  /// emissions are traced under this server's endpoint, and the
  /// warehouse's job transitions are wired up too.  Observation only.
  void set_recorder(obs::Recorder* recorder);

 private:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config, std::unique_ptr<DataWarehouse> warehouse);

  void register_methods();
  /// RPC shims: parse the wire payload, then delegate to MessageHandler.
  Expected<rpc::XrValue> handle_submit_dag(const std::vector<rpc::XrValue>& params,
                                           const rpc::Proxy& proxy);
  Expected<rpc::XrValue> handle_report(const std::vector<rpc::XrValue>& params,
                                       const rpc::Proxy& proxy);
  Expected<rpc::XrValue> handle_set_quota(const std::vector<rpc::XrValue>& params,
                                          const rpc::Proxy& proxy);

  void maybe_finish_dag(DagId dag_id);
  void send_plan(const std::string& client, const ExecutionPlan& plan);
  /// Straggler-defense detector pass (speculate = true, at most once per
  /// speculation_check_period): classifies the in-flight jobs and plans
  /// a speculative replica for each flagged straggler, within the
  /// per-DAG and global fan-out budgets.
  void maybe_speculate();
  /// MessageHandler hook: a tracker report settled a race.  Emits traces
  /// and counters and, when one attempt won, the loser-cancel RPC.
  void on_speculation_resolved(const SpeculationRecord& race,
                               SpeculationState final_state);
  /// Fires the armed crash hook when the journal crossed the threshold.
  void maybe_crash();
  /// End-of-sweep checkpoint policy: publishes an image and compacts the
  /// journal when either ServerConfig trigger (records since last image,
  /// sim-time period) has elapsed.  Also hosts the mid-checkpoint kill
  /// point (see arm_crash_hook).
  void maybe_checkpoint();

  rpc::MessageBus& bus_;
  ServerConfig config_;
  std::unique_ptr<DataWarehouse> warehouse_;
  ServerStats stats_;
  // The paper's pipeline modules (section 3.2), in stage order.
  std::unique_ptr<MessageHandler> message_handler_;
  std::unique_ptr<DagReducer> reducer_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<StragglerDetector> detector_;
  std::unique_ptr<rpc::ClarensService> service_;
  std::unique_ptr<rpc::ClarensClient> out_;  ///< for server -> client calls
  std::unique_ptr<sim::PeriodicProcess> control_;
  std::size_t crash_at_records_ = 0;
  std::function<void()> crash_hook_;
  bool crash_mid_checkpoint_ = false;  ///< armed hook fires inside a checkpoint
  /// Checkpoint-policy cursors.  Initialized to sequence 0 / sim time 0
  /// and re-derived from a recovered warehouse's carried image, so a
  /// recovered server stays in checkpoint lockstep with an uncrashed
  /// baseline run (the differential oracle compares their traces).
  std::uint64_t last_checkpoint_seq_ = 0;  // sphinx-lint: derived(maybe_checkpoint, SphinxServer)
  SimTime last_checkpoint_at_ = 0.0;  // sphinx-lint: derived(maybe_checkpoint, SphinxServer)
  /// Detector-cadence cursor, persisted to scheduler_state on every pass
  /// so a recovered server's next detector pass lands exactly where the
  /// crashed instance's would have (the differential oracle compares
  /// speculation launch times byte-for-byte).
  SimTime last_speculation_check_ = 0.0;  // sphinx-lint: derived(maybe_speculate, SphinxServer)
  obs::Recorder* recorder_ = nullptr;
  Logger log_{"sphinx-server"};
};

}  // namespace sphinx::core
