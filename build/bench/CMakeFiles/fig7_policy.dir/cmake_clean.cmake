file(REMOVE_RECURSE
  "CMakeFiles/fig7_policy.dir/fig7_policy.cpp.o"
  "CMakeFiles/fig7_policy.dir/fig7_policy.cpp.o.d"
  "fig7_policy"
  "fig7_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
