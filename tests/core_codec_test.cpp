// Tests for the client/server payload codecs: every message type must
// survive encode -> XML wire -> decode.

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "workflow/generator.hpp"

namespace sphinx::core {
namespace {

workflow::Dag sample_dag() {
  workflow::Dag dag(DagId(7), "cms-prod-42");
  workflow::JobSpec a;
  a.id = JobId(100);
  a.name = "reco<stage&1>";  // hostile characters must survive the wire
  a.compute_time = 61.5;
  a.inputs = {"lfn://raw/a", "lfn://raw/b"};
  a.output = "lfn://reco/a";
  a.output_bytes = 42e6;
  workflow::JobSpec b;
  b.id = JobId(101);
  b.name = "analyze";
  b.compute_time = 59.0;
  b.inputs = {"lfn://reco/a", "lfn://calib/x"};
  b.output = "lfn://plots/a";
  b.output_bytes = 1e6;
  dag.add_job(a);
  dag.add_job(b);
  dag.add_edge(JobId(100), JobId(101));
  return dag;
}

/// Full wire round trip: value -> XML text -> value.
rpc::XrValue through_wire(const rpc::XrValue& value) {
  rpc::MethodCall call;
  call.method = "test";
  call.params = {value};
  const auto parsed = rpc::MethodCall::parse(call.serialize());
  EXPECT_TRUE(parsed.has_value());
  return parsed->params.at(0);
}

TEST(DagCodec, RoundTripPreservesEverything) {
  const workflow::Dag original = sample_dag();
  const auto decoded = decode_dag(through_wire(encode_dag(original)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id(), original.id());
  EXPECT_EQ(decoded->name(), original.name());
  ASSERT_EQ(decoded->size(), original.size());
  for (const auto& job : original.jobs()) {
    ASSERT_TRUE(decoded->has_job(job.id));
    const auto& d = decoded->job(job.id);
    EXPECT_EQ(d.name, job.name);
    EXPECT_DOUBLE_EQ(d.compute_time, job.compute_time);
    EXPECT_EQ(d.inputs, job.inputs);
    EXPECT_EQ(d.output, job.output);
    EXPECT_DOUBLE_EQ(d.output_bytes, job.output_bytes);
  }
  EXPECT_EQ(decoded->parents(JobId(101)), std::vector<JobId>{JobId(100)});
}

TEST(DagCodec, GeneratedWorkloadRoundTrips) {
  workflow::IdSpace ids;
  data::ReplicaLocationService rls;
  workflow::WorkloadGenerator generator(workflow::WorkloadConfig{}, Rng(5),
                                        ids, rls, {SiteId(1), SiteId(2)});
  for (int i = 0; i < 5; ++i) {
    const workflow::Dag dag = generator.generate("rt" + std::to_string(i));
    const auto decoded = decode_dag(through_wire(encode_dag(dag)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->size(), dag.size());
    EXPECT_TRUE(decoded->validate().ok());
  }
}

TEST(DagCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(decode_dag(rpc::XrValue("not a struct")).has_value());
  rpc::XrValue::Struct incomplete;
  incomplete.emplace("dag_id", rpc::XrValue(1));
  EXPECT_FALSE(decode_dag(rpc::XrValue(std::move(incomplete))).has_value());
}

TEST(DagCodec, RejectsEdgeToUnknownParent) {
  rpc::XrValue encoded = encode_dag(sample_dag());
  // Corrupt: point job 101's parent at a nonexistent id.
  auto root = encoded.as_struct();
  auto jobs = root.at("jobs").as_array();
  auto job1 = jobs.at(1).as_struct();
  job1["parents"] = rpc::XrValue(rpc::XrValue::Array{rpc::XrValue(999)});
  jobs[1] = rpc::XrValue(std::move(job1));
  root["jobs"] = rpc::XrValue(std::move(jobs));
  EXPECT_FALSE(decode_dag(rpc::XrValue(std::move(root))).has_value());
}

TEST(PlanCodec, RoundTrip) {
  ExecutionPlan plan;
  plan.job = JobId(55);
  plan.dag = DagId(7);
  plan.job_name = "reco";
  plan.site = SiteId(3);
  plan.compute_time = 60.0;
  plan.inputs = {{"lfn://a", SiteId(1), 12e6}, {"lfn://b", SiteId(9), 7e6}};
  plan.output = "lfn://out";
  plan.output_bytes = 5e6;
  plan.attempt = 2;

  const auto decoded = decode_plan(through_wire(encode_plan(plan)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->job, plan.job);
  EXPECT_EQ(decoded->dag, plan.dag);
  EXPECT_EQ(decoded->site, plan.site);
  EXPECT_EQ(decoded->attempt, 2);
  ASSERT_EQ(decoded->inputs.size(), 2u);
  EXPECT_EQ(decoded->inputs[1].source, SiteId(9));
  EXPECT_DOUBLE_EQ(decoded->inputs[1].bytes, 7e6);
}

TEST(PlanCodec, EmptyInputsOk) {
  ExecutionPlan plan;
  plan.job = JobId(1);
  plan.dag = DagId(1);
  plan.job_name = "x";
  plan.site = SiteId(1);
  const auto decoded = decode_plan(through_wire(encode_plan(plan)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->inputs.empty());
}

TEST(PlanCodec, RejectsMissingMembers) {
  EXPECT_FALSE(decode_plan(rpc::XrValue(5)).has_value());
  rpc::XrValue::Struct s;
  s.emplace("job_id", rpc::XrValue(1));
  EXPECT_FALSE(decode_plan(rpc::XrValue(std::move(s))).has_value());
}

TEST(ReportCodec, RoundTripEachKind) {
  for (const ReportKind kind :
       {ReportKind::kSubmitted, ReportKind::kRunning, ReportKind::kCompleted,
        ReportKind::kCancelled, ReportKind::kHeld}) {
    TrackerReport report;
    report.job = JobId(9);
    report.kind = kind;
    report.site = SiteId(4);
    report.at = 1234.5;
    report.completion_time = 321.0;
    report.execution_time = 60.5;
    report.idle_time = 260.5;
    const auto decoded = decode_report(through_wire(encode_report(report)));
    ASSERT_TRUE(decoded.has_value()) << to_string(kind);
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->job, report.job);
    EXPECT_EQ(decoded->site, report.site);
    EXPECT_DOUBLE_EQ(decoded->at, report.at);
    EXPECT_DOUBLE_EQ(decoded->completion_time, report.completion_time);
    EXPECT_DOUBLE_EQ(decoded->execution_time, report.execution_time);
    EXPECT_DOUBLE_EQ(decoded->idle_time, report.idle_time);
  }
}

TEST(ReportCodec, RejectsUnknownKind) {
  rpc::XrValue encoded = encode_report(TrackerReport{});
  auto s = encoded.as_struct();
  s["kind"] = rpc::XrValue("exploded");
  EXPECT_FALSE(decode_report(rpc::XrValue(std::move(s))).has_value());
}

}  // namespace
}  // namespace sphinx::core
