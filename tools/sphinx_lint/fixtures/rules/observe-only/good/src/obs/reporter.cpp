/// \file reporter.cpp
/// Fixture: a compliant observer -- consumes values it is handed,
/// aggregates, and emits; no randomness, no warehouse access.

#include <cstdint>
#include <string>
#include <vector>

namespace fixture::obs {

struct Sample {
  std::string name;
  double value = 0.0;
};

double mean(const std::vector<Sample>& samples) {
  double sum = 0.0;
  for (const Sample& s : samples) sum += s.value;
  return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

}  // namespace fixture::obs
