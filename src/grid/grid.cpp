#include "grid/grid.hpp"

#include "common/error.hpp"

namespace sphinx::grid {

Grid::Grid(sim::Engine& engine, SeedTree seeds)
    : engine_(engine), seeds_(seeds) {}

SiteId Grid::add_site(const SiteSpec& spec) {
  SPHINX_ASSERT(!started_, "cannot add sites after start()");
  SPHINX_ASSERT(find_site(spec.site.name) == nullptr,
                "duplicate site name: " + spec.site.name);
  const SiteId id = site_ids_gen_.next();
  Slot slot;
  slot.site = std::make_unique<Site>(engine_, id, spec.site,
                                     seeds_.stream("site/" + spec.site.name));
  slot.failure = std::make_unique<FailureModel>(
      engine_, *slot.site, spec.failure,
      seeds_.stream("failure/" + spec.site.name));
  slot.background = std::make_unique<BackgroundLoad>(
      engine_, *slot.site, spec.background,
      seeds_.stream("background/" + spec.site.name));
  slot.failure->set_recorder(recorder_);
  sites_.push_back(std::move(slot));
  ids_.push_back(id);
  return id;
}

void Grid::set_recorder(obs::Recorder* recorder) noexcept {
  recorder_ = recorder;
  for (Slot& slot : sites_) slot.failure->set_recorder(recorder);
}

void Grid::start() {
  started_ = true;
  for (Slot& slot : sites_) {
    slot.failure->start();
    slot.background->start();
  }
}

Site& Grid::site(SiteId id) {
  SPHINX_ASSERT(id.valid() && id.value() <= sites_.size(),
                "unknown site id " + std::to_string(id.value()));
  return *sites_[id.value() - 1].site;
}

const Site& Grid::site(SiteId id) const {
  SPHINX_ASSERT(id.valid() && id.value() <= sites_.size(),
                "unknown site id " + std::to_string(id.value()));
  return *sites_[id.value() - 1].site;
}

Site* Grid::find_site(const std::string& name) noexcept {
  for (Slot& slot : sites_) {
    if (slot.site->name() == name) return slot.site.get();
  }
  return nullptr;
}

int Grid::total_cpus() const noexcept {
  int total = 0;
  for (const Slot& slot : sites_) total += slot.site->config().cpus;
  return total;
}

}  // namespace sphinx::grid
