#include "core/straggler.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace sphinx::core {

const char* to_string(StragglerVerdict verdict) noexcept {
  switch (verdict) {
    case StragglerVerdict::kHealthy: return "healthy";
    case StragglerVerdict::kStraggler: return "straggler";
    case StragglerVerdict::kTooYoung: return "too-young";
    case StragglerVerdict::kNoData: return "no-data";
    case StragglerVerdict::kStaleMonitor: return "stale-monitor";
  }
  return "?";
}

int job_class_of(Duration compute_time) noexcept {
  // Bucket k holds compute times in (2^(k-1), 2^k] seconds; everything
  // at or below one second shares bucket 0.
  int cls = 0;
  double edge = 1.0;
  while (edge < compute_time && cls < 62) {
    edge *= 2.0;
    ++cls;
  }
  return cls;
}

StragglerDetector::StragglerDetector(
    const DataWarehouse& warehouse,
    const monitor::MonitoringService* monitoring, const ServerConfig& config)
    : warehouse_(warehouse), monitoring_(monitoring), config_(config) {}

std::optional<Duration> StragglerDetector::threshold(SiteId site,
                                                     int job_class) const {
  std::vector<double> samples = warehouse_.runtime_samples(site, job_class);
  if (samples.size() < config_.speculation_min_samples) {
    // Cold-site fallback: a site that never completed anything in this
    // class (a fresh site -- or a black hole) is judged against the
    // class's cross-site distribution instead of escaping judgement.
    samples = warehouse_.runtime_samples_all_sites(job_class);
  }
  if (samples.size() < config_.speculation_min_samples) return std::nullopt;
  const double p =
      percentile(std::move(samples), config_.speculation_percentile);
  return std::max(config_.speculation_multiplier * p,
                  config_.speculation_min_elapsed);
}

StragglerVerdict StragglerDetector::classify(const JobRecord& job,
                                             SimTime now) const {
  if (job.planned_at >= kNever) return StragglerVerdict::kTooYoung;
  const Duration elapsed = now - job.planned_at;
  if (elapsed < config_.speculation_min_elapsed) {
    return StragglerVerdict::kTooYoung;
  }
  // Staleness guard: judging a site on monitoring data older than the
  // threshold (or on none at all) conflates "slow job" with "dark site".
  // A deployment without any monitoring service has nothing to be stale,
  // so the guard is vacuous there.
  if (monitoring_ != nullptr) {
    const Duration age = monitoring_->age(job.site, now);
    if (age > config_.speculation_stale_after) {
      return StragglerVerdict::kStaleMonitor;
    }
  }
  const auto limit = threshold(job.site, job_class_of(job.compute_time));
  if (!limit.has_value()) return StragglerVerdict::kNoData;
  return elapsed > *limit ? StragglerVerdict::kStraggler
                          : StragglerVerdict::kHealthy;
}

}  // namespace sphinx::core
