#pragma once
/// \file json.hpp
/// Minimal JSON document model + parser for the chaos harness.
///
/// The repro file (`chaos_repro.json`) must round-trip: the campaign
/// writes it, the `sphinx_chaos` CLI reads it back and replays the run
/// exactly.  The repo deliberately carries no third-party dependencies,
/// so this is a small recursive-descent parser covering the JSON subset
/// the harness emits (objects, arrays, strings, finite numbers, bools,
/// null).  Writing stays with the emitting code (obs::json_escape /
/// obs::format_double keep numbers deterministic); this file only reads.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace sphinx::chaos {

/// One parsed JSON value.  Object member order is preserved (the harness
/// compares serializations byte-for-byte, so order matters).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] Expected<JsonValue> parse_json(const std::string& input);

}  // namespace sphinx::chaos
