/// \file hygiene.cpp
/// iostream-include / pragma-once / file-comment: source hygiene.

#include <algorithm>
#include <regex>
#include <sstream>
#include <string>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

void rule_iostream_include(const FileContext& file, const Reporter& out) {
  if (!is_library_code(file.rel_path)) return;
  if (file.rel_path == "src/common/log.cpp") return;  // the logger itself
  // The flight recorder's export shim supports "-" (stdout) targets.
  if (file.rel_path == "src/obs/export.cpp") return;
  static const std::regex re(R"(^\s*#\s*include\s*<iostream>)");
  std::istringstream lines{std::string(file.stripped.code)};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    if (std::regex_search(line, re)) {
      out.report(n, "iostream-include",
                 "library code must log through src/common/log.hpp, not "
                 "<iostream>");
    }
  }
}

void rule_pragma_once(const FileContext& file, const Reporter& out) {
  if (!is_header(file.rel_path)) return;
  const auto& raw = file.stripped.raw_lines;
  std::size_t first_nonempty = 0;
  while (first_nonempty < raw.size() &&
         raw[first_nonempty].find_first_not_of(" \t\r") == std::string::npos) {
    ++first_nonempty;
  }
  if (first_nonempty >= raw.size() ||
      raw[first_nonempty].rfind("#pragma once", 0) != 0) {
    out.report(1, "pragma-once", "headers must start with #pragma once");
  }
}

void rule_file_comment(const FileContext& file, const Reporter& out) {
  if (!is_header(file.rel_path)) return;
  const auto& raw = file.stripped.raw_lines;
  const std::size_t limit = std::min<std::size_t>(raw.size(), 5);
  for (std::size_t i = 0; i < limit; ++i) {
    const std::size_t start = raw[i].find_first_not_of(" \t");
    if (start != std::string::npos &&
        raw[i].compare(start, 9, "/// \\file") == 0) {
      return;
    }
  }
  out.report(1, "file-comment",
             "headers must carry a `/// \\file` comment near the top");
}

}  // namespace

std::vector<Rule> hygiene_rules() {
  return {
      Rule{"iostream-include", "no <iostream> in library code (src/)",
           "Library code logs through src/common/log.hpp so output routing "
           "and verbosity stay centralized; <iostream> also drags in static "
           "initialization order concerns.  The logger itself and the "
           "recorder's stdout export shim are exempt.",
           &rule_iostream_include},
      Rule{"pragma-once", "headers start with #pragma once",
           "House style: include guards are #pragma once, as the first "
           "non-blank line of every header.",
           &rule_pragma_once},
      Rule{"file-comment", "headers carry a /// \\file comment",
           "Every header documents its purpose with a `/// \\file` comment "
           "within the first five lines, so a reader (and doc tooling) can "
           "tell what a module is for without reading it.",
           &rule_file_comment},
  };
}

}  // namespace sphinx::lint
