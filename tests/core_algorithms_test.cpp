// Unit tests for the four scheduling strategies against synthetic
// PlanningContexts (no simulation involved).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/algorithms.hpp"

namespace sphinx::core {
namespace {

CandidateSite site(std::uint64_t id, int cpus, std::int64_t outstanding = 0) {
  CandidateSite s;
  s.id = SiteId(id);
  s.cpus = cpus;
  s.outstanding = outstanding;
  return s;
}

PlanningContext context_of(std::vector<CandidateSite> sites) {
  PlanningContext context;
  context.sites = std::move(sites);
  return context;
}

TEST(MakeAlgorithm, ProducesEachStrategy) {
  EXPECT_EQ(make_algorithm(Algorithm::kRoundRobin)->name(), "round-robin");
  EXPECT_EQ(make_algorithm(Algorithm::kNumCpus)->name(), "num-cpus");
  EXPECT_EQ(make_algorithm(Algorithm::kQueueLength)->name(), "queue-length");
  EXPECT_EQ(make_algorithm(Algorithm::kCompletionTime)->name(),
            "completion-time");
}

TEST(RoundRobin, CyclesThroughSites) {
  RoundRobinAlgorithm rr;
  const auto ctx = context_of({site(1, 4), site(2, 4), site(3, 4)});
  EXPECT_EQ(rr.select(ctx), SiteId(1));
  EXPECT_EQ(rr.select(ctx), SiteId(2));
  EXPECT_EQ(rr.select(ctx), SiteId(3));
  EXPECT_EQ(rr.select(ctx), SiteId(1));
}

TEST(RoundRobin, EmptyContextYieldsNothing) {
  RoundRobinAlgorithm rr;
  EXPECT_FALSE(rr.select(context_of({})).has_value());
}

TEST(RoundRobin, CursorSurvivesShrinkingSiteList) {
  RoundRobinAlgorithm rr;
  const auto full = context_of({site(1, 4), site(2, 4), site(3, 4)});
  (void)rr.select(full);
  (void)rr.select(full);
  // A site was filtered out; selection still works.
  const auto fewer = context_of({site(1, 4), site(3, 4)});
  const auto pick = rr.select(fewer);
  ASSERT_TRUE(pick.has_value());
}

TEST(NumCpus, PicksMinimumLoadRate) {
  NumCpusAlgorithm alg;
  // rates: 4/8=0.5, 1/4=0.25, 3/2=1.5 -> site 2 wins.
  const auto ctx =
      context_of({site(1, 8, 4), site(2, 4, 1), site(3, 2, 3)});
  EXPECT_EQ(alg.select(ctx), SiteId(2));
}

TEST(NumCpus, PrefersBigIdleSite) {
  NumCpusAlgorithm alg;
  const auto ctx = context_of({site(1, 100, 0), site(2, 4, 0)});
  // Equal (zero) rates: first minimum wins -> catalog order.
  EXPECT_EQ(alg.select(ctx), SiteId(1));
}

TEST(NumCpus, EmptyYieldsNothing) {
  NumCpusAlgorithm alg;
  EXPECT_FALSE(alg.select(context_of({})).has_value());
}

TEST(QueueLength, UsesMonitoredQueueData) {
  QueueLengthAlgorithm alg;
  CandidateSite busy = site(1, 10, 0);
  busy.monitored = true;
  busy.mon_queued = 30;
  busy.mon_running = 10;
  CandidateSite calm = site(2, 10, 2);
  calm.monitored = true;
  calm.mon_queued = 0;
  calm.mon_running = 5;
  // rates: (30+10+0)/10 = 4 vs (0+5+2)/10 = 0.7.
  EXPECT_EQ(alg.select(context_of({busy, calm})), SiteId(2));
}

TEST(QueueLength, UnmonitoredSiteLooksIdle) {
  QueueLengthAlgorithm alg;
  CandidateSite monitored = site(1, 10, 0);
  monitored.monitored = true;
  monitored.mon_queued = 5;
  CandidateSite dark = site(2, 10, 0);  // no data: the stale-info hazard
  EXPECT_EQ(alg.select(context_of({monitored, dark})), SiteId(2));
}

TEST(QueueLength, LocalPlannedTermBreaksHerding) {
  QueueLengthAlgorithm alg;
  CandidateSite a = site(1, 10, 9);  // we already sent 9 jobs there
  a.monitored = true;
  CandidateSite b = site(2, 10, 0);
  b.monitored = true;
  b.mon_queued = 5;
  // (0+0+9)/10 = 0.9 vs (5+0+0)/10 = 0.5 -> b despite its queue.
  EXPECT_EQ(alg.select(context_of({a, b})), SiteId(2));
}

CandidateSite measured(std::uint64_t id, int cpus, double avg,
                       std::int64_t samples = 5,
                       std::int64_t outstanding = 0) {
  CandidateSite s = site(id, cpus, outstanding);
  s.avg_completion = avg;
  s.samples = samples;
  s.completed = samples;
  return s;
}

TEST(CompletionTime, ExploitsFastestMeasuredSite) {
  CompletionTimeAlgorithm alg;
  const auto ctx = context_of(
      {measured(1, 10, 400.0), measured(2, 10, 150.0), measured(3, 10, 900.0)});
  EXPECT_EQ(alg.select(ctx), SiteId(2));
}

TEST(CompletionTime, ProbesEachUnknownSiteOnce) {
  CompletionTimeAlgorithm alg;
  CandidateSite known = measured(1, 10, 100.0);
  CandidateSite unknown_a = site(2, 10);
  CandidateSite unknown_b = site(3, 10);
  const auto ctx = context_of({known, unknown_a, unknown_b});
  // First two selections probe the unknown sites (each exactly once)...
  const auto first = alg.select(ctx);
  const auto second = alg.select(ctx);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);
  EXPECT_NE(*first, SiteId(1));
  EXPECT_NE(*second, SiteId(1));
  // ...then planning exploits the measured site.
  EXPECT_EQ(alg.select(ctx), SiteId(1));
  EXPECT_EQ(alg.select(ctx), SiteId(1));
}

TEST(CompletionTime, CancelOnlySitesAreNotProbed) {
  CompletionTimeAlgorithm alg;
  CandidateSite burned = site(1, 10);
  burned.cancelled = 2;  // produced only timeouts so far
  CandidateSite known = measured(2, 10, 100.0);
  const auto ctx = context_of({burned, known});
  EXPECT_EQ(alg.select(ctx), SiteId(2));
}

TEST(CompletionTime, LoadPenaltySpreadsBursts) {
  CompletionTimeAlgorithm alg;
  // Site 1 is faster but heavily loaded by our own plans; site 2 wins.
  const auto ctx = context_of(
      {measured(1, 10, 100.0, 5, 20), measured(2, 10, 300.0, 5, 0)});
  // estimate1 = 100 * (1 + 4*20/10) = 900 > estimate2 = 300.
  EXPECT_EQ(alg.select(ctx), SiteId(2));
}

TEST(CompletionTime, FallsBackToRoundRobinWhileProbesInFlight) {
  CompletionTimeAlgorithm alg;
  const auto ctx = context_of({site(1, 10), site(2, 10)});
  // Two probes, then nothing is measured: round-robin fallback.
  const auto a = alg.select(ctx);
  const auto b = alg.select(ctx);
  const auto c = alg.select(ctx);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(*a, *b);
}

TEST(CompletionTime, EmptyYieldsNothing) {
  CompletionTimeAlgorithm alg;
  EXPECT_FALSE(alg.select(context_of({})).has_value());
}

// Property-style sweep: every algorithm returns a site from the feasible
// set (never invents one) across many random-ish contexts.
class AlgorithmSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmSweep, AlwaysSelectsFromFeasibleSet) {
  const auto alg = make_algorithm(GetParam());
  sphinx::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    PlanningContext ctx;
    for (int i = 0; i < n; ++i) {
      CandidateSite s = site(static_cast<std::uint64_t>(i + 1),
                             static_cast<int>(rng.uniform_int(1, 200)),
                             rng.uniform_int(0, 50));
      if (rng.chance(0.5)) {
        s.monitored = true;
        s.mon_queued = static_cast<int>(rng.uniform_int(0, 100));
        s.mon_running = static_cast<int>(rng.uniform_int(0, 100));
      }
      if (rng.chance(0.5)) {
        s.samples = rng.uniform_int(1, 30);
        s.completed = s.samples;
        s.avg_completion = rng.uniform(30.0, 2000.0);
      }
      if (rng.chance(0.2)) s.cancelled = rng.uniform_int(1, 5);
      ctx.sites.push_back(s);
    }
    const auto pick = alg->select(ctx);
    ASSERT_TRUE(pick.has_value());
    const bool in_set = std::any_of(
        ctx.sites.begin(), ctx.sites.end(),
        [&](const CandidateSite& s) { return s.id == *pick; });
    EXPECT_TRUE(in_set) << alg->name() << " invented a site";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AlgorithmSweep,
                         ::testing::Values(Algorithm::kRoundRobin,
                                           Algorithm::kNumCpus,
                                           Algorithm::kQueueLength,
                                           Algorithm::kCompletionTime),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "round-robin"
                                      ? std::string("RoundRobin")
                                  : to_string(info.param) == std::string("num-cpus")
                                      ? std::string("NumCpus")
                                  : to_string(info.param) ==
                                          std::string("queue-length")
                                      ? std::string("QueueLength")
                                      : std::string("CompletionTime");
                         });

TEST(States, RoundTripParsing) {
  for (const DagState s : {DagState::kReceived, DagState::kReduced,
                           DagState::kPlanning, DagState::kFinished}) {
    EXPECT_EQ(dag_state_from(to_string(s)), s);
  }
  for (const JobState s :
       {JobState::kUnplanned, JobState::kPlanned, JobState::kSubmitted,
        JobState::kRunning, JobState::kCompleted, JobState::kCancelled,
        JobState::kHeld}) {
    EXPECT_EQ(job_state_from(to_string(s)), s);
  }
  EXPECT_THROW((void)dag_state_from("bogus"), sphinx::AssertionError);
  EXPECT_THROW((void)job_state_from("bogus"), sphinx::AssertionError);
}

TEST(States, OutstandingClassification) {
  EXPECT_TRUE(is_outstanding(JobState::kPlanned));
  EXPECT_TRUE(is_outstanding(JobState::kSubmitted));
  EXPECT_TRUE(is_outstanding(JobState::kRunning));
  EXPECT_FALSE(is_outstanding(JobState::kUnplanned));
  EXPECT_FALSE(is_outstanding(JobState::kCompleted));
  EXPECT_FALSE(is_outstanding(JobState::kCancelled));
  EXPECT_FALSE(is_outstanding(JobState::kHeld));
}

}  // namespace
}  // namespace sphinx::core
