# Empty dependencies file for example_sphinx_sim.
# This may be replaced when dependencies are built.
