#include "core/message_handler.hpp"

#include <utility>

#include "core/straggler.hpp"

namespace sphinx::core {

MessageHandler::MessageHandler(DataWarehouse& warehouse,
                               const ServerConfig& config, ServerStats& stats,
                               JobCompletedHook on_job_completed)
    : warehouse_(warehouse),
      config_(config),
      stats_(stats),
      on_job_completed_(std::move(on_job_completed)) {}

bool MessageHandler::accept_dag(const workflow::Dag& dag,
                                const std::string& client, UserId user,
                                SimTime now, double priority,
                                SimTime deadline) {
  if (warehouse_.dag(dag.id()).has_value()) {
    ++stats_.duplicate_dags;
    return false;
  }
  warehouse_.insert_dag(dag, client, user, now, priority, deadline);
  ++stats_.dags_received;
  return true;
}

namespace {

/// Whether a report's attempt number names the job's live attempt.  The
/// job row tracks one attempt; while a race is open its primary attempt
/// is live too, and after kSpecDead (the replica died, the job row kept
/// the replica's burnt attempt number) the surviving primary still
/// reports under its own.  Attempt 0 is a legacy payload: attributed to
/// whatever is live.
[[nodiscard]] bool matches_live(int attempt, const JobRecord& job,
                                const std::optional<SpeculationRecord>& race) {
  if (attempt <= 0 || attempt == job.attempt) return true;
  if (!race.has_value()) return false;
  if (race->state == SpeculationState::kRacing) {
    return attempt == race->primary_attempt;
  }
  return race->state == SpeculationState::kSpecDead &&
         race->spec_attempt == job.attempt &&
         attempt == race->primary_attempt;
}

}  // namespace

void MessageHandler::settle_race(const JobRecord& job,
                                 const SpeculationRecord& race,
                                 SpeculationState final_state,
                                 const TrackerReport& report) {
  warehouse_.resolve_speculation(job.id, final_state);
  // Loser bookkeeping: the retired attempt had been outstanding on its
  // site since it was planned/launched; fold that in as a censored
  // duration so the reliability filter (cancelled > completed) still
  // sees black holes that only ever lose races.
  const bool primary_retired = final_state == SpeculationState::kSpecWon ||
                               final_state == SpeculationState::kPrimaryDead;
  const SiteId loser_site =
      primary_retired ? race.primary_site : race.spec_site;
  const Duration censored = primary_retired
                                ? report.at - race.primary_planned_at
                                : report.at - race.launched_at;
  warehouse_.record_cancellation(loser_site, censored);
  if (config_.use_policy) {
    if (const auto dag = warehouse_.dag(job.dag); dag.has_value()) {
      warehouse_.refund_quota(dag->user, loser_site, "cpu_seconds",
                              job.compute_time);
      warehouse_.refund_quota(dag->user, loser_site, "disk_bytes",
                              job.output_bytes);
    }
  }
  if (final_state == SpeculationState::kPrimaryWon) {
    ++stats_.speculations_won_primary;
  } else if (final_state == SpeculationState::kSpecWon) {
    ++stats_.speculations_won_spec;
  }
  if (on_speculation_resolved_) on_speculation_resolved_(race, final_state);
}

StatusOrError MessageHandler::apply_report(const TrackerReport& report) {
  ++stats_.reports_processed;

  const auto job = warehouse_.job(report.job);
  if (!job.has_value()) {
    return make_error("unknown_job",
                      "no job " + std::to_string(report.job.value()));
  }
  // The open race, if any; resolved races still matter to matches_live.
  const auto racing = warehouse_.active_speculation(report.job);
  const auto latest = racing.has_value()
                          ? racing
                          : warehouse_.latest_speculation(report.job);

  switch (report.kind) {
    case ReportKind::kSubmitted:
      if (!matches_live(report.attempt, *job, latest)) break;
      if (job->state == JobState::kPlanned) {
        warehouse_.set_job_state(job->id, JobState::kSubmitted,
                                 "report:submitted");
      }
      break;
    case ReportKind::kRunning:
      if (!matches_live(report.attempt, *job, latest)) break;
      if (job->state == JobState::kSubmitted ||
          job->state == JobState::kPlanned) {
        warehouse_.set_job_state(job->id, JobState::kRunning,
                                 "report:running");
      }
      break;
    case ReportKind::kCompleted: {
      if (job->state == JobState::kCompleted) {
        // Duplicate completion report: folding it in again would double
        // count the site's statistics and re-run the DAG finish check.
        break;
      }
      // First completion wins, whichever attempt it came from.  A
      // completion needs no live-attempt guard: every attempt reports at
      // most one terminal event, so a completion from a retired attempt
      // can only be the race loser finishing before its cancel landed --
      // the client's own arbitration already swallowed it.
      if (racing.has_value()) {
        settle_race(*job, *racing,
                    report.attempt == racing->spec_attempt
                        ? SpeculationState::kSpecWon
                        : SpeculationState::kPrimaryWon,
                    report);
      }
      warehouse_.set_job_state(job->id, JobState::kCompleted,
                               "report:completed");
      // Feedback: fold the completion time into the site's EWMA (the
      // prediction module's knowledge base, eq. 3).
      warehouse_.record_completion(report.site, report.completion_time);
      // The straggler detector learns (site, class) runtime percentiles
      // from genuine completions.  Journaled, so only paid when the
      // defense is on.
      if (config_.speculate) {
        warehouse_.record_runtime_sample(report.site,
                                         job_class_of(job->compute_time),
                                         report.completion_time);
      }
      if (on_job_completed_) on_job_completed_(job->dag);
      break;
    }
    case ReportKind::kCancelled:
    case ReportKind::kHeld: {
      if (job->state == JobState::kCompleted ||
          job->state == JobState::kUnplanned) {
        // Stale report: the job already finished, or the attempt was
        // already torn down and is waiting for the planner.  Acting on
        // it would double-refund quota and skew the site's statistics.
        break;
      }
      if (racing.has_value() && report.attempt == racing->primary_attempt &&
          report.attempt != job->attempt) {
        // The suspected straggler died mid-race (tracker timeout or site
        // hold).  The replica keeps running as the job's only attempt;
        // no replan -- settling the race *is* the recovery.
        settle_race(*job, *racing, SpeculationState::kPrimaryDead, report);
        break;
      }
      if (racing.has_value() && report.attempt == racing->spec_attempt) {
        // The replica died mid-race.  The primary keeps running; the job
        // row is retargeted back at it (keeping the replica's burnt
        // attempt number -- see resolve_speculation).
        settle_race(*job, *racing, SpeculationState::kSpecDead, report);
        break;
      }
      // Any other report against an open race is stale (a retired
      // generation) or attempt-less and ambiguous; the race paths above
      // own every properly attributed death.
      if (racing.has_value()) break;
      if (!matches_live(report.attempt, *job, latest)) break;
      // The tracker killed or observed the death of this attempt.  Return
      // the reserved quota and queue the job for replanning.
      warehouse_.set_job_state(job->id,
                               report.kind == ReportKind::kHeld
                                   ? JobState::kHeld
                                   : JobState::kCancelled,
                               report.kind == ReportKind::kHeld
                                   ? "report:held"
                                   : "report:cancelled");
      warehouse_.record_cancellation(report.site, report.completion_time);
      if (config_.use_policy) {
        if (const auto dag = warehouse_.dag(job->dag); dag.has_value()) {
          warehouse_.refund_quota(dag->user, report.site, "cpu_seconds",
                                  job->compute_time);
          warehouse_.refund_quota(dag->user, report.site, "disk_bytes",
                                  job->output_bytes);
        }
      }
      // Back to the planner on the next sweep (the unplanned transition
      // re-enqueues the DAG on the dirty list).
      warehouse_.set_job_state(job->id, JobState::kUnplanned,
                               "replan-queued");
      break;
    }
  }
  return {};
}

void MessageHandler::set_quota(UserId user, SiteId site,
                               const std::string& resource, double limit) {
  warehouse_.set_quota(user, site, resource, limit);
}

}  // namespace sphinx::core
