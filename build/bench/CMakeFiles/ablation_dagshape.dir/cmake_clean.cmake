file(REMOVE_RECURSE
  "CMakeFiles/ablation_dagshape.dir/ablation_dagshape.cpp.o"
  "CMakeFiles/ablation_dagshape.dir/ablation_dagshape.cpp.o.d"
  "ablation_dagshape"
  "ablation_dagshape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dagshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
