#include "submit/classad.hpp"

#include <optional>
#include <sstream>

namespace sphinx::submit {
namespace {

/// Three-way comparison across numeric/string/bool alternatives; returns
/// nullopt for incomparable types.
std::optional<int> compare(const AdValue& a, const AdValue& b) {
  const auto as_num = [](const AdValue& v) -> std::optional<double> {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&v)) return *d;
    return std::nullopt;
  };
  if (const auto na = as_num(a), nb = as_num(b); na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  if (const auto* sa = std::get_if<std::string>(&a)) {
    if (const auto* sb = std::get_if<std::string>(&b)) {
      return sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
    }
  }
  if (const auto* ba = std::get_if<bool>(&a)) {
    if (const auto* bb = std::get_if<bool>(&b)) {
      return static_cast<int>(*ba) - static_cast<int>(*bb);
    }
  }
  return std::nullopt;
}

}  // namespace

std::string to_string(const AdValue& v) {
  std::ostringstream oss;
  std::visit(
      [&oss](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          oss << (x ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::string>) {
          oss << '"' << x << '"';
        } else {
          oss << x;
        }
      },
      v);
  return oss.str();
}

const char* to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

void ClassAd::set(const std::string& name, AdValue value) {
  attributes_[name] = std::move(value);
}

bool ClassAd::has(const std::string& name) const noexcept {
  return attributes_.contains(name);
}

const AdValue& ClassAd::get(const std::string& name) const {
  const auto it = attributes_.find(name);
  SPHINX_ASSERT(it != attributes_.end(), "missing ClassAd attribute " + name);
  return it->second;
}

std::int64_t ClassAd::get_int(const std::string& name) const {
  const AdValue& v = get(name);
  SPHINX_ASSERT(std::holds_alternative<std::int64_t>(v),
                name + " is not an int");
  return std::get<std::int64_t>(v);
}

double ClassAd::get_real(const std::string& name) const {
  const AdValue& v = get(name);
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  SPHINX_ASSERT(std::holds_alternative<double>(v), name + " is not numeric");
  return std::get<double>(v);
}

const std::string& ClassAd::get_string(const std::string& name) const {
  const AdValue& v = get(name);
  SPHINX_ASSERT(std::holds_alternative<std::string>(v),
                name + " is not a string");
  return std::get<std::string>(v);
}

bool ClassAd::get_bool(const std::string& name) const {
  const AdValue& v = get(name);
  SPHINX_ASSERT(std::holds_alternative<bool>(v), name + " is not a bool");
  return std::get<bool>(v);
}

bool evaluate(const Requirement& r, const ClassAd& ad) {
  if (!ad.has(r.attribute)) return false;  // undefined never matches
  const auto cmp = compare(ad.get(r.attribute), r.literal);
  if (!cmp.has_value()) return false;  // incomparable types
  switch (r.op) {
    case CmpOp::kEq: return *cmp == 0;
    case CmpOp::kNe: return *cmp != 0;
    case CmpOp::kLt: return *cmp < 0;
    case CmpOp::kLe: return *cmp <= 0;
    case CmpOp::kGt: return *cmp > 0;
    case CmpOp::kGe: return *cmp >= 0;
  }
  return false;
}

bool ClassAd::matches(const ClassAd& other) const {
  for (const Requirement& r : requirements_) {
    if (!evaluate(r, other)) return false;
  }
  return true;
}

bool ClassAd::symmetric_match(const ClassAd& a, const ClassAd& b) {
  return a.matches(b) && b.matches(a);
}

std::string ClassAd::render() const {
  std::ostringstream oss;
  for (const auto& [name, value] : attributes_) {
    oss << name << " = " << to_string(value) << '\n';
  }
  if (!requirements_.empty()) {
    oss << "requirements =";
    for (std::size_t i = 0; i < requirements_.size(); ++i) {
      if (i != 0) oss << " &&";
      oss << ' ' << requirements_[i].attribute << ' '
          << to_string(requirements_[i].op) << ' '
          << to_string(requirements_[i].literal);
    }
    oss << '\n';
  }
  oss << "queue\n";
  return oss.str();
}

}  // namespace sphinx::submit
