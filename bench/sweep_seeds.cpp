/// Robustness sweep: do the Figure 3/5 conclusions survive across seeds?
///
/// The paper ran each comparison "multiple number of times"; this bench
/// replays the four-strategy panel over several independent seeds (on a
/// thread pool -- simulations share nothing) and reports the mean and
/// spread of the average DAG completion time, plus how often each
/// strategy ranked first.

#include <map>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/stats.hpp"
#include "exp/parallel.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Seed sweep",
               "four algorithms x 6 seeds (30 dags x 10 jobs/dag)");

  const std::vector<std::uint64_t> seeds = {20050404, 7, 42, 1234, 777, 31337};
  std::vector<std::function<std::vector<exp::TenantResult>()>> tasks;
  for (const std::uint64_t seed : seeds) {
    tasks.push_back([seed] {
      exp::Experiment experiment(paper_config(30, seed));
      return experiment.run(exp::standard_panel());
    });
  }
  const auto runs = exp::run_parallel(tasks);

  std::map<std::string, RunningStats> completion;
  std::map<std::string, RunningStats> timeouts;
  std::map<std::string, int> wins;
  for (const auto& run : runs) {
    const exp::TenantResult* best = nullptr;
    for (const auto& r : run) {
      completion[r.label].add(r.avg_dag_completion);
      timeouts[r.label].add(static_cast<double>(r.timeouts));
      if (best == nullptr || r.avg_dag_completion < best->avg_dag_completion) {
        best = &r;
      }
    }
    ++wins[best->label];
  }

  TextTable table;
  table.set_header({"algorithm", "mean dag (s)", "stddev", "mean timeouts",
                    "ranked #1"});
  for (const auto& spec : exp::standard_panel()) {
    const auto& c = completion.at(spec.label);
    table.add_row({spec.label, format_double(c.mean(), 1),
                   format_double(c.stddev(), 1),
                   format_double(timeouts.at(spec.label).mean(), 1),
                   std::to_string(wins[spec.label]) + "/" +
                       std::to_string(seeds.size())});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("round-robin should never rank first; completion-time and the "
              "informed strategies contend at this scale\n");
  return 0;
}
