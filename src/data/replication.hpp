#pragma once
/// \file replication.hpp
/// Replica selection: choosing the best transfer source for an input.
///
/// The SPHINX planner decides "the optimal transfer source for the input
/// files" (paper section 3.2, Planner step 3).  Selection minimizes the
/// contention-free transfer estimate to the execution site; a replica
/// already at the execution site always wins with cost zero.

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "data/gridftp.hpp"
#include "data/lfn.hpp"

namespace sphinx::data {

/// A chosen source replica and its estimated stage-in cost.
struct ReplicaChoice {
  Replica replica;
  Duration estimated_cost = 0.0;
};

/// Picks the cheapest replica to stage to `destination`.  Returns nullopt
/// when `replicas` is empty.
[[nodiscard]] std::optional<ReplicaChoice> select_replica(
    const std::vector<Replica>& replicas, SiteId destination,
    const TransferService& transfers);

/// Total estimated stage-in time for a set of inputs (sum of per-file
/// estimates; transfers run sequentially per job in the gateway).
[[nodiscard]] Duration estimate_stage_in(
    const std::vector<std::vector<Replica>>& inputs, SiteId destination,
    const TransferService& transfers);

}  // namespace sphinx::data
