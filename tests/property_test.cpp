// Property-style tests: invariants that must hold across randomized
// inputs and operation sequences (parameterized by seed).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "chaos/schedule.hpp"
#include "common/stats.hpp"
#include "data/gridftp.hpp"
#include "db/database.hpp"
#include "exp/scenario.hpp"
#include "grid/site.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "workflow/generator.hpp"

namespace sphinx {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// --- engine determinism ---------------------------------------------------

TEST_P(SeededProperty, EngineRunsAreBitIdentical) {
  const auto trace = [&](std::uint64_t seed) {
    sim::Engine engine;
    Rng rng(seed);
    std::vector<double> fired_times;
    // A random mix of plain events, chains and cancellations.
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
      handles.push_back(engine.schedule_at(
          rng.uniform(0, 1000), "e",
          [&fired_times, &engine] { fired_times.push_back(engine.now()); }));
    }
    for (int i = 0; i < 50; ++i) {
      engine.cancel(handles[static_cast<std::size_t>(
          rng.uniform_int(0, 199))]);
    }
    engine.run_until();
    return fired_times;
  };
  EXPECT_EQ(trace(GetParam()), trace(GetParam()));
}

// --- transfer byte conservation -------------------------------------------

TEST_P(SeededProperty, TransferServiceConservesBytes) {
  sim::Engine engine;
  data::TransferService transfers(engine);
  Rng rng(GetParam());
  for (std::uint64_t s = 1; s <= 6; ++s) {
    transfers.set_link(SiteId(s), {rng.uniform(2e6, 30e6),
                                   rng.uniform(2e6, 30e6)});
  }
  double requested = 0.0;
  double completed_bytes = 0.0;
  std::vector<std::pair<TransferId, double>> started;
  for (int i = 0; i < 120; ++i) {
    const double bytes = rng.uniform(1e6, 2e8);
    const auto src = SiteId(static_cast<std::uint64_t>(rng.uniform_int(1, 6)));
    const auto dst = SiteId(static_cast<std::uint64_t>(rng.uniform_int(1, 6)));
    engine.schedule_at(rng.uniform(0, 500), "start", [&, src, dst, bytes] {
      requested += bytes;
      const TransferId id = transfers.transfer(
          src, dst, bytes,
          [&completed_bytes, bytes](TransferId, Duration) {
            completed_bytes += bytes;
          });
      started.emplace_back(id, bytes);
    });
  }
  // Random cancellations along the way.
  for (int i = 0; i < 20; ++i) {
    engine.schedule_at(rng.uniform(100, 400), "cancel", [&] {
      if (started.empty()) return;
      transfers.cancel(started[static_cast<std::size_t>(
                                   rng.uniform_int(
                                       0, static_cast<std::int64_t>(
                                              started.size() - 1)))]
                           .first);
    });
  }
  engine.run_until();
  EXPECT_EQ(transfers.active(), 0u);
  const auto& stats = transfers.stats();
  EXPECT_EQ(stats.started, 120u);
  EXPECT_EQ(stats.completed + stats.cancelled, stats.started);
  // Every completed transfer delivered exactly its bytes; moved bytes are
  // completed bytes plus partial progress of cancelled ones.
  EXPECT_GE(stats.bytes_moved + 1.0, completed_bytes);
  EXPECT_LE(completed_bytes, requested + 1.0);
}

// --- site CPU accounting under chaos ---------------------------------------

TEST_P(SeededProperty, SiteAccountingSurvivesChaos) {
  sim::Engine engine;
  grid::SiteConfig config;
  config.name = "chaos";
  config.cpus = 8;
  config.runtime_noise = 0.2;
  grid::Site site(engine, SiteId(1), config, Rng(GetParam()));
  Rng rng(GetParam() ^ 0xabcdef);

  std::vector<SubmissionId> live;
  std::size_t events_after_terminal = 0;
  std::unordered_map<std::uint64_t, bool> terminal;

  for (int i = 0; i < 300; ++i) {
    engine.schedule_at(rng.uniform(0, 2000), "op", [&] {
      const double dice = rng.uniform();
      if (dice < 0.55) {
        grid::RemoteJob job;
        job.compute_time = rng.uniform(10, 300);
        job.vo = rng.chance(0.5) ? "uscms" : "background";
        const auto sid = site.submit(std::move(job), [&](const grid::JobEvent& e) {
          if (terminal[e.submission.value()]) ++events_after_terminal;
          if (grid::is_terminal(e.state)) terminal[e.submission.value()] = true;
        });
        if (sid.has_value()) live.push_back(*sid);
      } else if (dice < 0.75 && !live.empty()) {
        (void)site.cancel(live[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size() - 1)))]);
      } else if (dice < 0.82) {
        site.go_down();
      } else if (dice < 0.89) {
        site.become_black_hole();
      } else if (dice < 0.93) {
        site.degrade();
      } else {
        site.recover();
      }
      // Invariant: the queue report never exceeds physical CPUs.
      if (const auto q = site.query(); q.has_value()) {
        EXPECT_GE(q->running, 0);
        EXPECT_LE(q->running, config.cpus);
        EXPECT_GE(q->queued, 0);
        EXPECT_EQ(q->free_cpus, q->cpus - q->running);
      }
    });
  }
  engine.run_until(hours(24));
  EXPECT_EQ(events_after_terminal, 0u) << "events emitted after terminal state";
  // Counter algebra: everything submitted ends somewhere.
  const auto& counters = site.counters();
  EXPECT_LE(counters.completed + counters.cancelled + counters.lost,
            counters.submitted);
}

// --- journal replay equivalence ---------------------------------------------

TEST_P(SeededProperty, JournalReplayMatchesOriginal) {
  Rng rng(GetParam());
  db::Database original;
  db::Table& table = original.create_table(
      "t", db::Schema{{"k", db::ValueType::kInt},
                      {"s", db::ValueType::kText},
                      {"x", db::ValueType::kReal}});
  std::vector<db::RowId> rows;
  for (int i = 0; i < 400; ++i) {
    const double dice = rng.uniform();
    if (dice < 0.6 || rows.empty()) {
      rows.push_back(table.insert({db::Value(rng.uniform_int(0, 1000)),
                                   db::Value("s" + std::to_string(i % 17)),
                                   db::Value(rng.uniform(0, 1))}));
    } else if (dice < 0.85) {
      table.update(rows[static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(rows.size() - 1)))],
                   "s", db::Value("u" + std::to_string(i)));
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rows.size() - 1)));
      table.erase(rows[idx]);
      rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  // Replay directly and through the text form; both must equal original.
  db::Database direct;
  ASSERT_TRUE(direct.recover(original.journal()).ok());
  const auto parsed = db::Journal::parse(original.journal().serialize());
  ASSERT_TRUE(parsed.has_value());
  db::Database via_text;
  ASSERT_TRUE(via_text.recover(*parsed).ok());

  const auto snapshot = [](const db::Database& d) {
    std::vector<std::string> out;
    d.table("t").for_each([&out](const db::Row& row) {
      std::string line = std::to_string(row.id);
      for (const auto& cell : row.cells) line += "|" + cell.to_string();
      out.push_back(std::move(line));
    });
    return out;
  };
  EXPECT_EQ(snapshot(direct), snapshot(original));
  EXPECT_EQ(snapshot(via_text), snapshot(original));
}

// --- workload generator invariants ------------------------------------------

TEST_P(SeededProperty, GeneratedWorkloadsAreWellFormed) {
  workflow::IdSpace ids;
  data::ReplicaLocationService rls;
  workflow::WorkloadConfig config;
  Rng meta(GetParam());
  config.jobs_per_dag = static_cast<int>(meta.uniform_int(1, 25));
  config.min_inputs = static_cast<int>(meta.uniform_int(1, 3));
  config.max_inputs = config.min_inputs + static_cast<int>(meta.uniform_int(0, 3));
  config.max_parents = static_cast<int>(meta.uniform_int(0, 4));
  workflow::WorkloadGenerator generator(config, Rng(GetParam()), ids, rls,
                                        {SiteId(1), SiteId(2), SiteId(3)});
  for (int d = 0; d < 10; ++d) {
    const workflow::Dag dag = generator.generate("p" + std::to_string(d));
    ASSERT_TRUE(dag.validate().ok());
    EXPECT_EQ(dag.size(), static_cast<std::size_t>(config.jobs_per_dag));
    for (const auto& job : dag.jobs()) {
      EXPECT_GE(static_cast<int>(job.inputs.size()), config.min_inputs);
      EXPECT_LE(static_cast<int>(job.inputs.size()),
                std::max(config.max_inputs, config.max_parents));
      EXPECT_LE(dag.parents(job.id).size(),
                static_cast<std::size_t>(config.max_parents));
      // Every non-parent input must be resolvable through the RLS.
      for (const auto& input : job.inputs) {
        bool from_parent = false;
        for (const JobId parent : dag.parents(job.id)) {
          if (dag.job(parent).output == input) from_parent = true;
        }
        if (!from_parent) {
          EXPECT_TRUE(rls.exists(input)) << input;
        }
      }
    }
  }
}

// --- chaos schedule synthesis ----------------------------------------------

TEST_P(SeededProperty, ChaosSchedulesAreSortedAndNonOverlapping) {
  chaos::ScheduleConfig config;
  const auto schedule =
      chaos::synthesize(GetParam(), config, exp::Scenario::site_names());
  EXPECT_GT(schedule.outage_count(), 0u);
  for (const auto& [site, list] : schedule.outages) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_GE(list[i].at, 0.0);
      EXPECT_GE(list[i].duration, config.min_duration);
      if (i > 0) {
        // Next outage starts strictly after the previous repair (the
        // FailureModel schedule contract, plus the 1 s seq-order gap).
        EXPECT_GE(list[i].at,
                  list[i - 1].at + list[i - 1].duration + 1.0);
      }
    }
  }
  for (std::size_t i = 1; i < schedule.crash_records.size(); ++i) {
    EXPECT_GT(schedule.crash_records[i], schedule.crash_records[i - 1]);
  }
}

TEST_P(SeededProperty, ChaosScheduleSynthesisIsSeedDeterministic) {
  chaos::ScheduleConfig config;
  const auto sites = exp::Scenario::site_names();
  const auto a = chaos::synthesize(GetParam(), config, sites);
  const auto b = chaos::synthesize(GetParam(), config, sites);
  EXPECT_EQ(chaos::to_json(a), chaos::to_json(b));
  const auto other = chaos::synthesize(GetParam() + 1000, config, sites);
  EXPECT_NE(chaos::to_json(a), chaos::to_json(other));
}

TEST_P(SeededProperty, ScheduledOutagesAlternateWithRepairs) {
  // Drive a real scenario from a synthesized schedule and read the
  // flight recorder back: per site, outage and repair events must
  // strictly alternate starting with an outage, and every repair lands
  // after its outage.  (The final outage may still be open at horizon.)
  chaos::ScheduleConfig config;
  config.span = hours(3);
  config.outages = 6;
  config.bursts = 1;
  config.burst_sites = 2;
  const auto schedule =
      chaos::synthesize(GetParam(), config, exp::Scenario::site_names());

  exp::ScenarioConfig scenario_config;
  scenario_config.seed = GetParam();
  scenario_config.site_failures = false;
  scenario_config.outage_schedules = schedule.outages;
  exp::Scenario scenario(scenario_config);
  scenario.add_tenant("alt", {});
  scenario.start();
  scenario.run(hours(12));

  std::map<std::string, int> open;  // site -> currently-down?
  std::map<std::string, SimTime> last_outage_at;
  std::size_t outages_seen = 0;
  for (const auto& event : scenario.recorder().trace().events()) {
    if (event.kind == obs::TraceKind::kSiteOutage) {
      EXPECT_EQ(open[event.source], 0) << event.source << " double outage";
      open[event.source] = 1;
      last_outage_at[event.source] = event.at;
      ++outages_seen;
    } else if (event.kind == obs::TraceKind::kSiteRepair) {
      EXPECT_EQ(open[event.source], 1) << event.source << " repair w/o outage";
      open[event.source] = 0;
      EXPECT_GT(event.at, last_outage_at[event.source]);
    }
  }
  EXPECT_EQ(outages_seen, schedule.outage_count());
}

// --- stats edge cases -----------------------------------------------------

TEST_P(SeededProperty, PercentileSingleSampleIsThatSample) {
  Rng rng(GetParam());
  const double x = rng.uniform(-1000.0, 1000.0);
  // With one sample every quantile is the sample itself.
  EXPECT_DOUBLE_EQ(percentile({x}, 0.0), x);
  EXPECT_DOUBLE_EQ(percentile({x}, 0.5), x);
  EXPECT_DOUBLE_EQ(percentile({x}, 1.0), x);
}

TEST_P(SeededProperty, PercentileExtremesAreMinAndMax) {
  Rng rng(GetParam());
  std::vector<double> samples;
  double min = 0.0;
  double max = 0.0;
  const int n = static_cast<int>(rng.uniform_int(1, 50));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1e6, 1e6);
    samples.push_back(x);
    min = samples.size() == 1 ? x : std::min(min, x);
    max = samples.size() == 1 ? x : std::max(max, x);
  }
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), min);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), max);
  // Quantiles are monotone in q.
  EXPECT_LE(percentile(samples, 0.25), percentile(samples, 0.75));
}

TEST_P(SeededProperty, RunningStatsMergeWithEmptySideIsIdentity) {
  Rng rng(GetParam());
  RunningStats filled;
  const int n = static_cast<int>(rng.uniform_int(1, 40));
  for (int i = 0; i < n; ++i) filled.add(rng.uniform(-100.0, 100.0));

  // empty.merge(filled) == filled.
  RunningStats left;
  left.merge(filled);
  EXPECT_EQ(left.count(), filled.count());
  EXPECT_DOUBLE_EQ(left.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(left.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(left.min(), filled.min());
  EXPECT_DOUBLE_EQ(left.max(), filled.max());

  // filled.merge(empty) leaves filled untouched.
  RunningStats right = filled;
  right.merge(RunningStats{});
  EXPECT_EQ(right.count(), filled.count());
  EXPECT_DOUBLE_EQ(right.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(right.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(right.min(), filled.min());
  EXPECT_DOUBLE_EQ(right.max(), filled.max());
}

TEST_P(SeededProperty, RunningStatsMergeMatchesBulkAccumulation) {
  Rng rng(GetParam());
  RunningStats a;
  RunningStats b;
  RunningStats bulk;
  const int n = static_cast<int>(rng.uniform_int(1, 60));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    (i % 2 == 0 ? a : b).add(x);
    bulk.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace sphinx
