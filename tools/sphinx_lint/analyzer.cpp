/// \file analyzer.cpp
/// Lexical + declaration substrate shared by every rule pass.

#include "analyzer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "rule.hpp"

namespace sphinx::lint {
namespace {

constexpr std::array<std::string_view, 3> kDeterminismWhitelist = {
    "src/common/time.hpp",
    "src/common/rng.hpp",
    "src/common/log.cpp",
};

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators fused into one token, longest first.
constexpr std::array<std::string_view, 21> kMultiPunct = {
    "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "++", "--", "|=",
};

}  // namespace

bool is_header(const std::string& rel_path) {
  return rel_path.ends_with(".hpp") || rel_path.ends_with(".h") ||
         rel_path.ends_with(".hh");
}

bool is_library_code(const std::string& rel_path) {
  return rel_path.starts_with("src/");
}

bool determinism_whitelisted(const std::string& rel_path) {
  return std::find(kDeterminismWhitelist.begin(), kDeterminismWhitelist.end(),
                   rel_path) != kDeterminismWhitelist.end();
}

std::string module_of(const std::string& rel_path) {
  const std::size_t first = rel_path.find('/');
  if (first == std::string::npos) return "";
  const std::size_t second = rel_path.find('/', first + 1);
  if (second == std::string::npos) return rel_path.substr(0, first);
  return rel_path.substr(0, second);
}

std::size_t line_of(std::string_view text, std::size_t offset) {
  return static_cast<std::size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(offset),
                        '\n')) +
         1;
}

Stripped strip(std::string_view content) {
  enum class Mode {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  Stripped out;
  out.code.reserve(content.size());
  std::string raw_line;
  std::string comment_line;
  Mode mode = Mode::kCode;
  std::string raw_close;  // for raw strings: )delim"

  auto parse_allows = [&] {
    std::set<std::string> rules;
    std::size_t pos = 0;
    while ((pos = comment_line.find("sphinx-lint-allow(", pos)) !=
           std::string::npos) {
      pos += std::string_view("sphinx-lint-allow(").size();
      std::string rule;
      while (pos < comment_line.size() && comment_line[pos] != ')') {
        const char c = comment_line[pos++];
        if (c == ',') {
          if (!rule.empty()) rules.insert(rule);
          rule.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          rule.push_back(c);
        }
      }
      if (!rule.empty()) rules.insert(rule);
    }
    return rules;
  };

  auto end_line = [&] {
    out.raw_lines.push_back(raw_line);
    out.allow.push_back(parse_allows());
    out.comment_lines.push_back(comment_line);
    raw_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      out.code.push_back('\n');
      end_line();
      continue;
    }
    raw_line.push_back(c);
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else if (c == 'R' && next == '"') {
          // Raw string: R"delim( ... )delim".  Scan the delimiter.
          std::string delim;
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(' &&
                 content[j] != '\n') {
            delim.push_back(content[j++]);
          }
          if (j < content.size() && content[j] == '(') {
            raw_close = ")" + delim + "\"";
            mode = Mode::kRawString;
            for (std::size_t k = i; k <= j; ++k) out.code.push_back(' ');
            raw_line.append(content.substr(i + 1, j - i));
            i = j;
          } else {
            out.code.push_back(c);  // not a raw string after all
          }
        } else if (c == '"') {
          mode = Mode::kString;
          out.code.push_back('"');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals: a
          // separator is always preceded by an alphanumeric character.
          const char prev = out.code.empty() ? '\0' : out.code.back();
          if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
            out.code.push_back(' ');
          } else {
            mode = Mode::kChar;
            out.code.push_back('\'');
          }
        } else {
          out.code.push_back(c);
        }
        break;
      case Mode::kLineComment:
        comment_line.push_back(c);
        out.code.push_back(' ');
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          out.code.append("  ");
          raw_line.push_back(next);
          ++i;
        } else {
          comment_line.push_back(c);
          out.code.push_back(' ');
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          out.code.append("  ");
          if (next != '\0' && next != '\n') {
            raw_line.push_back(next);
            ++i;
          }
        } else if (c == '"') {
          mode = Mode::kCode;
          out.code.push_back('"');
        } else {
          out.code.push_back(' ');
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out.code.append("  ");
          if (next != '\0' && next != '\n') {
            raw_line.push_back(next);
            ++i;
          }
        } else if (c == '\'') {
          mode = Mode::kCode;
          out.code.push_back('\'');
        } else {
          out.code.push_back(' ');
        }
        break;
      case Mode::kRawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) {
            out.code.push_back(' ');
          }
          raw_line.append(content.substr(i + 1, raw_close.size() - 1));
          i += raw_close.size() - 1;
          mode = Mode::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
    }
  }
  end_line();
  return out;
}

std::vector<Token> tokenize(std::string_view content) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? content[i + k] : '\0';
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && content[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Raw strings.
    if (c == 'R' && peek(1) == '"') {
      std::string delim;
      std::size_t j = i + 2;
      while (j < n && content[j] != '(' && content[j] != '\n' &&
             content[j] != '"') {
        delim.push_back(content[j++]);
      }
      if (j < n && content[j] == '(') {
        const std::string close = ")" + delim + "\"";
        const std::size_t start_line = line;
        std::size_t k = j + 1;
        std::string value;
        while (k < n && content.compare(k, close.size(), close) != 0) {
          if (content[k] == '\n') ++line;
          value.push_back(content[k++]);
        }
        out.push_back(Token{TokenKind::kString, std::move(value), start_line});
        i = std::min(n, k + close.size());
        continue;
      }
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      // Digit separator: 1'000'000.
      if (c == '\'' && !out.empty() && out.back().kind == TokenKind::kNumber) {
        ++i;
        continue;
      }
      const char quote = c;
      const std::size_t start_line = line;
      std::string value;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) {
          value.push_back(content[i]);
          value.push_back(content[i + 1]);
          i += 2;
          continue;
        }
        if (content[i] == '\n') ++line;
        value.push_back(content[i++]);
      }
      ++i;  // closing quote
      out.push_back(Token{quote == '"' ? TokenKind::kString : TokenKind::kChar,
                          std::move(value), start_line});
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (i < n && ident_char(content[i])) text.push_back(content[i++]);
      out.push_back(Token{TokenKind::kIdentifier, std::move(text), line});
      continue;
    }
    // Numbers (loose: digits, dots, exponents, hex, separators).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      while (i < n &&
             (ident_char(content[i]) || content[i] == '.' ||
              content[i] == '\'' ||
              ((content[i] == '+' || content[i] == '-') && i > 0 &&
               (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                content[i - 1] == 'p' || content[i - 1] == 'P') &&
               !text.empty()))) {
        if (content[i] != '\'') text.push_back(content[i]);
        ++i;
      }
      out.push_back(Token{TokenKind::kNumber, std::move(text), line});
      continue;
    }
    // Punctuation, longest-match multi-char operators first.
    bool fused = false;
    for (const std::string_view op : kMultiPunct) {
      if (content.compare(i, op.size(), op) == 0) {
        out.push_back(Token{TokenKind::kPunct, std::string(op), line});
        i += op.size();
        fused = true;
        break;
      }
    }
    if (!fused) {
      out.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

namespace {

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Keywords that look like `name (...) {` but are not functions.
[[nodiscard]] bool control_keyword(const std::string& name) {
  static const std::set<std::string> kControl = {
      "if",     "for",   "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "do", "else",
  };
  return kControl.contains(name);
}

/// Skips a balanced group starting at `i` (which must be the opening
/// token).  Returns the index one past the closing token, or npos.
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& t,
                                        std::size_t i, std::string_view open,
                                        std::string_view close) {
  if (i >= t.size() || !is_punct(t[i], open)) return std::string::npos;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], open)) ++depth;
    else if (is_punct(t[i], close) && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

}  // namespace

std::vector<FunctionSpan> function_spans(const std::vector<Token>& tokens) {
  std::vector<FunctionSpan> spans;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (control_keyword(tokens[i].text)) continue;
    // Gather a possibly qualified name ending at tokens[i]: walk back
    // over `A :: B :: name` and destructor tildes.
    std::size_t name_end = i;
    if (i + 1 >= tokens.size() || !is_punct(tokens[i + 1], "(")) continue;

    // Candidate: name ( params ) ... { body }
    std::size_t after_params = skip_balanced(tokens, i + 1, "(", ")");
    if (after_params == std::string::npos) continue;

    // Trailer: const/noexcept/override/final/-> type/ctor-init-list,
    // ending at the body `{` -- or bail on `;` (declaration), `=`
    // (deleted/defaulted or assignment), or operators that mean this
    // was an expression, not a definition.
    std::size_t j = after_params;
    bool in_init_list = false;
    bool found_body = false;
    while (j < tokens.size()) {
      const Token& t = tokens[j];
      if (is_punct(t, "{")) {
        found_body = true;
        break;
      }
      if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",") ||
          is_punct(t, ")") || is_punct(t, "}")) {
        if (!in_init_list) break;
      }
      if (is_punct(t, ":")) {
        in_init_list = true;
        ++j;
        // Ctor init list: `member (args)` or `member {args}` groups
        // separated by commas, until the body `{`.
        while (j < tokens.size()) {
          // Skip the member name (possibly qualified/templated).
          while (j < tokens.size() &&
                 (tokens[j].kind == TokenKind::kIdentifier ||
                  is_punct(tokens[j], "::") || is_punct(tokens[j], "<") ||
                  is_punct(tokens[j], ">") ||
                  tokens[j].kind == TokenKind::kNumber)) {
            ++j;
          }
          if (j >= tokens.size()) break;
          if (is_punct(tokens[j], "(")) {
            j = skip_balanced(tokens, j, "(", ")");
          } else if (is_punct(tokens[j], "{")) {
            j = skip_balanced(tokens, j, "{", "}");
          } else {
            break;
          }
          if (j == std::string::npos) break;
          if (j < tokens.size() && is_punct(tokens[j], ",")) {
            ++j;
            continue;
          }
          break;
        }
        if (j == std::string::npos || j >= tokens.size()) break;
        if (is_punct(tokens[j], "{")) found_body = true;
        break;
      }
      if (t.kind == TokenKind::kIdentifier || is_punct(t, "->") ||
          is_punct(t, "::") || is_punct(t, "<") || is_punct(t, ">") ||
          is_punct(t, "*") || is_punct(t, "&") || is_punct(t, "(")) {
        if (is_punct(t, "(")) {
          j = skip_balanced(tokens, j, "(", ")");
          if (j == std::string::npos) break;
          continue;
        }
        ++j;
        continue;
      }
      break;
    }
    if (!found_body || j == std::string::npos || j >= tokens.size()) continue;

    // Build the qualified name by walking back from name_end.
    std::string qualified = tokens[name_end].text;
    std::size_t k = name_end;
    while (k >= 2 && is_punct(tokens[k - 1], "::") &&
           tokens[k - 2].kind == TokenKind::kIdentifier) {
      qualified = tokens[k - 2].text + "::" + qualified;
      k -= 2;
    }
    if (k >= 1 && is_punct(tokens[k - 1], "~")) qualified = "~" + qualified;

    const std::size_t body_open = j;
    const std::size_t after_body = skip_balanced(tokens, body_open, "{", "}");
    if (after_body == std::string::npos) continue;
    std::string name = tokens[name_end].text;
    if (k >= 1 && is_punct(tokens[k - 1], "~")) name = "~" + name;
    spans.push_back(FunctionSpan{std::move(name), std::move(qualified),
                                 body_open, after_body - 1});
  }
  return spans;
}

const FunctionSpan* enclosing_function(const std::vector<FunctionSpan>& spans,
                                       std::size_t index) {
  const FunctionSpan* best = nullptr;
  for (const FunctionSpan& s : spans) {
    if (index < s.first_token || index > s.last_token) continue;
    if (best == nullptr ||
        s.last_token - s.first_token < best->last_token - best->first_token) {
      best = &s;
    }
  }
  return best;
}

bool FileContext::allowed(std::size_t line, const std::string& rule) const {
  if (line == 0 || line > stripped.allow.size()) return false;
  const auto& rules = stripped.allow[line - 1];
  return rules.contains(rule) || rules.contains("all");
}

FileContext parse_file(std::string_view content, std::string rel_path) {
  FileContext ctx;
  ctx.rel_path = std::move(rel_path);
  ctx.stripped = strip(content);
  ctx.tokens = tokenize(content);
  // File-level acknowledgments: `sphinx-lint: <tag>` anywhere in a
  // comment; the tag is the hyphenated word(s) right after the colon.
  for (const std::string& comment : ctx.stripped.comment_lines) {
    std::size_t pos = 0;
    while ((pos = comment.find("sphinx-lint:", pos)) != std::string::npos) {
      pos += std::string_view("sphinx-lint:").size();
      while (pos < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[pos]))) {
        ++pos;
      }
      std::string tag;
      while (pos < comment.size() &&
             (ident_char(comment[pos]) || comment[pos] == '-')) {
        tag.push_back(comment[pos++]);
      }
      if (!tag.empty()) ctx.acks.insert(tag);
    }
  }
  ctx.derived = extract_derived(ctx.stripped, ctx.tokens);
  extract_unordered(ctx.tokens, ctx.tainted_vars, ctx.tainted_fns);
  return ctx;
}

}  // namespace sphinx::lint
