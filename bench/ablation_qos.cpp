/// Ablation: QoS deadline scheduling (the paper's future work, section 6:
/// "developing methods to schedule jobs with variable Quality of Service
/// requirements").
///
/// Two identical tenants receive the same mixed workload -- one third of
/// the DAGs carry a tight deadline, the rest are best effort.  One
/// tenant's server plans priority/earliest-deadline-first; the other
/// plans in pure submission order.  The QoS server should meet more
/// deadlines without ruining best-effort completion times.

#include "bench_common.hpp"
#include "common/strings.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Ablation (future work)",
               "QoS deadline scheduling (60 dags x 10 jobs/dag)");

  exp::ExperimentConfig config = paper_config(60);
  exp::Scenario scenario(config.scenario);

  exp::TenantOptions qos_options;
  qos_options.use_qos_ordering = true;
  exp::TenantOptions fifo_options;
  fifo_options.use_qos_ordering = false;
  exp::Tenant& qos = scenario.add_tenant("edf", qos_options);
  exp::Tenant& fifo = scenario.add_tenant("fifo", fifo_options);

  auto generator_a = scenario.make_generator("shared", config.workload);
  auto generator_b = scenario.make_generator("shared", config.workload);
  const auto dags_a = generator_a.generate_batch("a", config.dag_count);
  const auto dags_b = generator_b.generate_batch("b", config.dag_count);

  scenario.start();
  scenario.engine().schedule_at(10.0, "submit", [&] {
    for (int k = 0; k < config.dag_count; ++k) {
      // Every third DAG is urgent: finish within 30 minutes.
      const SimTime deadline =
          k % 3 == 0 ? scenario.engine().now() + minutes(30) : kNever;
      qos.client->submit(dags_a[static_cast<std::size_t>(k)], 0.0, deadline);
      fifo.client->submit(dags_b[static_cast<std::size_t>(k)], 0.0, deadline);
    }
  });
  scenario.run(config.horizon);

  const auto report = [](const char* label, exp::Tenant& tenant) {
    const auto [met, total] = tenant.client->deadline_hits();
    // Best-effort average excludes deadline DAGs.
    RunningStats best_effort;
    for (const auto& outcome : tenant.client->dag_outcomes()) {
      if (outcome.deadline >= kNever && outcome.done()) {
        best_effort.add(outcome.completion_time());
      }
    }
    std::printf("%-6s deadlines met %zu/%zu, best-effort avg %s\n", label,
                met, total, format_duration(best_effort.mean()).c_str());
  };
  std::printf("\n");
  report("edf", qos);
  report("fifo", fifo);
  std::printf("\nexpectation: EDF ordering meets more deadlines at a small "
              "best-effort cost\n");
  return 0;
}
