// Tests for the GMA-style metric registry and its MonitoringService
// producer integration.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "grid/grid.hpp"
#include "monitor/gma.hpp"
#include "monitor/service.hpp"

namespace sphinx::monitor {
namespace {

Metric metric(const std::string& name, std::uint64_t site, double value,
              SimTime at) {
  return Metric{name, SiteId(site), value, at, "test"};
}

TEST(MetricRegistry, PublishAndLatest) {
  MetricRegistry registry;
  EXPECT_FALSE(registry.latest("queue.length", SiteId(1)).has_value());
  registry.publish(metric("queue.length", 1, 5.0, 10.0));
  registry.publish(metric("queue.length", 1, 7.0, 20.0));
  registry.publish(metric("queue.length", 2, 3.0, 20.0));
  const auto latest = registry.latest("queue.length", SiteId(1));
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 7.0);
  EXPECT_DOUBLE_EQ(latest->timestamp, 20.0);
  EXPECT_EQ(registry.published(), 3u);
  // Series are per (name, site).
  EXPECT_DOUBLE_EQ(registry.latest("queue.length", SiteId(2))->value, 3.0);
  EXPECT_FALSE(registry.latest("cpu.free", SiteId(1)).has_value());
}

TEST(MetricRegistry, HistoryWindowAndMean) {
  MetricRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.publish(metric("load", 1, i, i * 10.0));
  }
  const auto window = registry.history("load", SiteId(1), 50.0);
  ASSERT_EQ(window.size(), 5u);
  EXPECT_DOUBLE_EQ(window.front().value, 5.0);
  EXPECT_DOUBLE_EQ(window.back().value, 9.0);
  EXPECT_DOUBLE_EQ(*registry.mean_since("load", SiteId(1), 50.0), 7.0);
  EXPECT_FALSE(registry.mean_since("load", SiteId(1), 1000.0).has_value());
  EXPECT_FALSE(registry.mean_since("other", SiteId(1), 0.0).has_value());
}

TEST(MetricRegistry, HistoryBounded) {
  MetricRegistry registry(8);
  for (int i = 0; i < 100; ++i) {
    registry.publish(metric("x", 1, i, i));
  }
  const auto all = registry.history("x", SiteId(1));
  EXPECT_EQ(all.size(), 8u);
  EXPECT_DOUBLE_EQ(all.front().value, 92.0);  // oldest retained
}

TEST(MetricRegistry, EvictionIsEldestFirst) {
  MetricRegistry registry(3);
  for (int i = 0; i < 5; ++i) {
    registry.publish(metric("x", 1, i, i));
  }
  const auto all = registry.history("x", SiteId(1));
  // Exactly the newest `limit` observations survive, oldest first.
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].value, 2.0);
  EXPECT_DOUBLE_EQ(all[1].value, 3.0);
  EXPECT_DOUBLE_EQ(all[2].value, 4.0);
  // latest() is unaffected by eviction.
  EXPECT_DOUBLE_EQ(registry.latest("x", SiteId(1))->value, 4.0);
}

TEST(MetricRegistry, SetHistoryLimitTrimsExistingSeries) {
  MetricRegistry registry(16);
  EXPECT_EQ(registry.history_limit(), 16u);
  for (int i = 0; i < 10; ++i) {
    registry.publish(metric("a", 1, i, i));
    registry.publish(metric("b", 2, 100 + i, i));
  }
  registry.set_history_limit(4);
  EXPECT_EQ(registry.history_limit(), 4u);
  // Every series is trimmed immediately, eldest evicted first.
  const auto a = registry.history("a", SiteId(1));
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.front().value, 6.0);
  EXPECT_DOUBLE_EQ(a.back().value, 9.0);
  const auto b = registry.history("b", SiteId(2));
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b.front().value, 106.0);
  // New publishes honour the tighter cap.
  registry.publish(metric("a", 1, 10, 10));
  EXPECT_EQ(registry.history("a", SiteId(1)).size(), 4u);
  EXPECT_DOUBLE_EQ(registry.history("a", SiteId(1)).front().value, 7.0);
}

TEST(MetricRegistry, HistoryLimitMustBePositive) {
  EXPECT_THROW(MetricRegistry{0}, ContractViolation);
  MetricRegistry registry(4);
  EXPECT_THROW(registry.set_history_limit(0), ContractViolation);
  EXPECT_EQ(registry.history_limit(), 4u);  // unchanged after the throw
}

TEST(MetricRegistry, WildcardSubscriptionSeesEveryName) {
  MetricRegistry registry;
  std::vector<std::string> seen;
  registry.subscribe("*", [&](const Metric& m) { seen.push_back(m.name); });
  registry.publish(metric("queue.length", 1, 1.0, 0.0));
  registry.publish(metric("cpu.free", 2, 2.0, 0.0));
  registry.publish(metric("site.alive", 1, 1.0, 1.0));
  EXPECT_EQ(seen, (std::vector<std::string>{"queue.length", "cpu.free",
                                            "site.alive"}));
}

TEST(MetricRegistry, SubscriptionsFanOut) {
  MetricRegistry registry;
  int any_site = 0;
  int site_2_only = 0;
  int other_name = 0;
  registry.subscribe("queue.length",
                     [&](const Metric&) { ++any_site; });
  const auto narrow = registry.subscribe(
      "queue.length", [&](const Metric&) { ++site_2_only; }, SiteId(2));
  registry.subscribe("cpu.free", [&](const Metric&) { ++other_name; });

  registry.publish(metric("queue.length", 1, 1.0, 0.0));
  registry.publish(metric("queue.length", 2, 2.0, 0.0));
  EXPECT_EQ(any_site, 2);
  EXPECT_EQ(site_2_only, 1);
  EXPECT_EQ(other_name, 0);

  registry.unsubscribe(narrow);
  registry.publish(metric("queue.length", 2, 3.0, 1.0));
  EXPECT_EQ(site_2_only, 1);  // unchanged after unsubscribe
  EXPECT_EQ(any_site, 3);
  EXPECT_EQ(registry.subscriptions(), 2u);
  EXPECT_NO_THROW(registry.unsubscribe(SubscriptionId{}));
}

TEST(MetricRegistry, NamesDirectory) {
  MetricRegistry registry;
  registry.publish(metric("b.metric", 1, 0, 0));
  registry.publish(metric("a.metric", 1, 0, 0));
  registry.publish(metric("a.metric", 2, 0, 0));
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"a.metric", "b.metric"}));
}

TEST(MonitoringProducer, PublishesPollsIntoRegistry) {
  sim::Engine engine;
  grid::Grid grid(engine, SeedTree(4));
  grid::SiteSpec spec;
  spec.site.name = "alpha";
  spec.site.cpus = 4;
  const SiteId site = grid.add_site(spec);

  MonitorConfig config;
  config.poll_period = minutes(1);
  config.report_latency = 1.0;
  MonitoringService service(engine, grid, config, Rng(1));
  MetricRegistry registry;
  service.attach_registry(&registry);
  service.start();

  // Load the site so the metrics are non-trivial.
  for (int i = 0; i < 6; ++i) {
    grid::RemoteJob job;
    job.compute_time = hours(3);
    (void)grid.site(site).submit(std::move(job), nullptr);
  }
  engine.run_until(minutes(5));

  EXPECT_GT(registry.published(), 8u);
  EXPECT_DOUBLE_EQ(registry.latest("site.alive", site)->value, 1.0);
  EXPECT_DOUBLE_EQ(registry.latest("jobs.running", site)->value, 4.0);
  EXPECT_DOUBLE_EQ(registry.latest("queue.length", site)->value, 2.0);
  EXPECT_DOUBLE_EQ(registry.latest("cpu.free", site)->value, 0.0);

  // Take the site down: aliveness flips on the next poll.
  grid.site(site).go_down();
  engine.run_until(minutes(8));
  EXPECT_DOUBLE_EQ(registry.latest("site.alive", site)->value, 0.0);
  // The queue series simply stops updating (stale), like real monitoring.
  EXPECT_DOUBLE_EQ(registry.latest("queue.length", site)->value, 2.0);
}

TEST(MonitoringProducer, SubscribersSeeLiveFeed) {
  sim::Engine engine;
  grid::Grid grid(engine, SeedTree(4));
  grid::SiteSpec spec;
  spec.site.name = "alpha";
  spec.site.cpus = 2;
  const SiteId site = grid.add_site(spec);
  MonitorConfig config;
  config.poll_period = minutes(2);
  MonitoringService service(engine, grid, config, Rng(1));
  MetricRegistry registry;
  service.attach_registry(&registry);
  service.start();

  std::vector<double> alive_feed;
  registry.subscribe("site.alive",
                     [&](const Metric& m) { alive_feed.push_back(m.value); },
                     site);
  engine.run_until(minutes(7));
  EXPECT_EQ(alive_feed.size(), 4u);  // polls at 0, 2, 4, 6 minutes
}

}  // namespace
}  // namespace sphinx::monitor
