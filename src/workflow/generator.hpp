#pragma once
/// \file generator.hpp
/// Random workload generation matching the paper's experiment setup.
///
/// Section 4.2: "we submit a few directed acyclic graphs (DAGs) of jobs,
/// each of which has 10 jobs in random structure.  The job simulates a
/// simple execution that takes two or three input files, spends one
/// minute before generating an output file.  The size of the output file
/// is different for each job ... it is expected that each job will take
/// about three or four minutes" including transfers.  The generator
/// produces exactly that workload; pre-existing input files are
/// registered in the RLS at random sites so stage-in costs are real.

#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "data/rls.hpp"
#include "workflow/dag.hpp"

namespace sphinx::workflow {

/// Knobs for the workload generator.
struct WorkloadConfig {
  int jobs_per_dag = 10;
  Duration compute_time = 60.0;      ///< identical for all jobs (paper)
  int min_inputs = 2;
  int max_inputs = 3;
  int max_parents = 2;               ///< parents drawn among earlier jobs
  double external_min_bytes = 60e6;  ///< pre-existing input sizes
  double external_max_bytes = 180e6;
  double output_min_bytes = 10e6;    ///< per-job output sizes (all differ)
  double output_max_bytes = 100e6;
  int external_replicas = 1;         ///< replicas per pre-existing file
};

/// Shared id space so every generated entity is unique within a scenario.
struct IdSpace {
  IdGenerator<DagId> dags;
  IdGenerator<JobId> jobs;
  std::uint64_t next_file = 0;
};

class WorkloadGenerator {
 public:
  /// \param sites sites eligible to hold pre-existing input replicas.
  WorkloadGenerator(WorkloadConfig config, Rng rng, IdSpace& ids,
                    data::ReplicaLocationService& rls,
                    std::vector<SiteId> sites);

  /// Generates one DAG, registering its external inputs in the RLS.
  [[nodiscard]] Dag generate(const std::string& name);

  /// Generates a batch of DAGs ("30 dags x 10 jobs/dag").
  [[nodiscard]] std::vector<Dag> generate_batch(const std::string& prefix,
                                                int count);

 private:
  [[nodiscard]] data::Lfn make_external_input();

  WorkloadConfig config_;
  Rng rng_;
  IdSpace& ids_;
  data::ReplicaLocationService& rls_;
  std::vector<SiteId> sites_;
};

}  // namespace sphinx::workflow
