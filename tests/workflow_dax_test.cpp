// Tests for the DAX XML workflow interchange format.

#include <gtest/gtest.h>

#include "workflow/dax.hpp"
#include "workflow/generator.hpp"

namespace sphinx::workflow {
namespace {

Dag diamond() {
  Dag dag(DagId(7), "diamond");
  JobSpec a;
  a.id = JobId(1);
  a.name = "gen";
  a.compute_time = 120.0;
  a.inputs = {"lfn://seed"};
  a.output = "lfn://a";
  a.output_bytes = 2e6;
  JobSpec b;
  b.id = JobId(2);
  b.name = "left";
  b.inputs = {"lfn://a"};
  b.output = "lfn://b";
  JobSpec c;
  c.id = JobId(3);
  c.name = "right";
  c.inputs = {"lfn://a", "lfn://calib"};
  c.output = "lfn://c";
  JobSpec d;
  d.id = JobId(4);
  d.name = "merge";
  d.inputs = {"lfn://b", "lfn://c"};
  d.output = "lfn://result";
  dag.add_job(a);
  dag.add_job(b);
  dag.add_job(c);
  dag.add_job(d);
  dag.add_edge(JobId(1), JobId(2));
  dag.add_edge(JobId(1), JobId(3));
  dag.add_edge(JobId(2), JobId(4));
  dag.add_edge(JobId(3), JobId(4));
  return dag;
}

TEST(Dax, WriteContainsExpectedStructure) {
  const std::string xml = write_dax(diamond());
  EXPECT_NE(xml.find("<adag"), std::string::npos);
  EXPECT_NE(xml.find("name=\"diamond\""), std::string::npos);
  EXPECT_NE(xml.find("link=\"input\""), std::string::npos);
  EXPECT_NE(xml.find("link=\"output\""), std::string::npos);
  EXPECT_NE(xml.find("<child ref=\"4\">"), std::string::npos);
}

TEST(Dax, RoundTripPreservesStructure) {
  const Dag original = diamond();
  const auto parsed = parse_dax(write_dax(original));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->id(), original.id());
  EXPECT_EQ(parsed->name(), original.name());
  ASSERT_EQ(parsed->size(), original.size());
  for (const JobSpec& job : original.jobs()) {
    ASSERT_TRUE(parsed->has_job(job.id));
    const JobSpec& p = parsed->job(job.id);
    EXPECT_EQ(p.name, job.name);
    EXPECT_DOUBLE_EQ(p.compute_time, job.compute_time);
    EXPECT_EQ(p.inputs, job.inputs);
    EXPECT_EQ(p.output, job.output);
    EXPECT_DOUBLE_EQ(p.output_bytes, job.output_bytes);
    EXPECT_EQ(parsed->parents(job.id), original.parents(job.id));
  }
  EXPECT_TRUE(parsed->validate().ok());
}

TEST(Dax, GeneratedWorkloadsRoundTrip) {
  IdSpace ids;
  data::ReplicaLocationService rls;
  WorkloadGenerator generator(WorkloadConfig{}, Rng(3), ids, rls,
                              {SiteId(1), SiteId(2)});
  for (int i = 0; i < 10; ++i) {
    const Dag dag = generator.generate("dax" + std::to_string(i));
    const auto parsed = parse_dax(write_dax(dag));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->size(), dag.size());
    // Dependency structure identical job by job.
    for (const JobSpec& job : dag.jobs()) {
      EXPECT_EQ(parsed->parents(job.id), dag.parents(job.id));
    }
  }
}

TEST(Dax, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_dax("").has_value());
  EXPECT_FALSE(parse_dax("<root/>").has_value());
  EXPECT_FALSE(parse_dax("<adag/>").has_value());  // no dagId
  // Job without output.
  EXPECT_FALSE(parse_dax(R"(<adag dagId="1" name="x">
    <job id="1" name="a"><uses lfn="lfn://i" link="input"/></job>
  </adag>)")
                   .has_value());
  // Duplicate job id.
  EXPECT_FALSE(parse_dax(R"(<adag dagId="1" name="x">
    <job id="1" name="a"><uses lfn="lfn://o" link="output"/></job>
    <job id="1" name="b"><uses lfn="lfn://p" link="output"/></job>
  </adag>)")
                   .has_value());
  // Edge to unknown job.
  EXPECT_FALSE(parse_dax(R"(<adag dagId="1" name="x">
    <job id="1" name="a"><uses lfn="lfn://o" link="output"/></job>
    <child ref="1"><parent ref="9"/></child>
  </adag>)")
                   .has_value());
  // Unknown link kind.
  EXPECT_FALSE(parse_dax(R"(<adag dagId="1" name="x">
    <job id="1" name="a"><uses lfn="lfn://o" link="sideways"/></job>
  </adag>)")
                   .has_value());
  // Cycle.
  EXPECT_FALSE(parse_dax(R"(<adag dagId="1" name="x">
    <job id="1" name="a"><uses lfn="lfn://b" link="input"/><uses lfn="lfn://a" link="output"/></job>
    <job id="2" name="b"><uses lfn="lfn://a" link="input"/><uses lfn="lfn://b" link="output"/></job>
    <child ref="1"><parent ref="2"/></child>
    <child ref="2"><parent ref="1"/></child>
  </adag>)")
                   .has_value());
}

TEST(Dax, HostileCharactersSurvive) {
  Dag dag(DagId(1), "we<ir&d \"name\"");
  JobSpec job;
  job.id = JobId(1);
  job.name = "a<b>&c";
  job.inputs = {"lfn://with space & <angle>"};
  job.output = "lfn://out'quote\"";
  dag.add_job(job);
  const auto parsed = parse_dax(write_dax(dag));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name(), dag.name());
  EXPECT_EQ(parsed->job(JobId(1)).name, "a<b>&c");
  EXPECT_EQ(parsed->job(JobId(1)).inputs[0], "lfn://with space & <angle>");
}

}  // namespace
}  // namespace sphinx::workflow
