# Empty dependencies file for fig8_timeouts.
# This may be replaced when dependencies are built.
