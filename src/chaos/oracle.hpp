#pragma once
/// \file oracle.hpp
/// Per-run correctness oracles for chaos campaigns.
///
/// Two families:
///  - invariant oracles judge one run on its own: every submitted DAG
///    reached a terminal state (no lost jobs, nothing stuck), the
///    warehouse's check_invariants sweep passed, and the recorder trace
///    is monotone in sim time;
///  - the differential oracle compares a crashed-and-recovered run
///    against the same seed run uninterrupted: terminal warehouse state
///    (journal serialization) and the recorder trace -- minus the chaos
///    harness's own crash/recovery marker events -- must match
///    byte-for-byte.

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace sphinx::chaos {

/// Everything an oracle needs from one finished run.
struct RunArtifacts {
  std::string journal_text;  ///< warehouse journal at end of run
  std::string trace_jsonl;   ///< full recorder trace
  /// Total journal records ever appended (next_seq): the unit crash
  /// thresholds use, immune to checkpoint compaction.
  std::size_t journal_records = 0;
  /// Records retained at end of run (the suffix after the last
  /// compaction; equals journal_records with checkpointing off).
  std::size_t journal_live_records = 0;
  std::size_t dags_total = 0;
  std::size_t dags_finished = 0;
  /// Speculative replicas the server launched (straggler defense).
  std::size_t speculations = 0;
  SimTime stopped_at = 0.0;
  /// First warehouse/engine invariant violation caught during the run
  /// ("" when clean).
  std::string invariant_violation;
};

/// One oracle verdict; `violation` explains the first failure.
struct OracleReport {
  bool ok = true;
  std::string violation;
};

/// Removes the chaos harness's own trace lines (server_crash /
/// server_recovery events) so a recovered run's trace is comparable to
/// the uninterrupted baseline's.
[[nodiscard]] std::string strip_chaos_events(const std::string& trace_jsonl);

/// Failover-aware stripping: chaos marker events, lease lifecycle events
/// (lease_granted / lease_expired / lease_fenced / shard_adopted), and
/// every line whose src or subj lives under the "ctrl/" prefix.  The
/// control plane's traffic differs between a failover run and its
/// baseline *by design* (the dead owner stops beating, the survivor
/// adopts), so the differential oracle judges only the scheduling-layer
/// residue, which must still match byte-for-byte.
[[nodiscard]] std::string strip_failover_events(const std::string& trace_jsonl);

/// Invariant oracles over one run (completeness, stored sweep verdict,
/// monotone trace timestamps).
[[nodiscard]] OracleReport check_run_invariants(const RunArtifacts& run);

/// Differential oracle: recovered run vs uninterrupted baseline.
[[nodiscard]] OracleReport check_differential(const RunArtifacts& chaotic,
                                              const RunArtifacts& baseline);

/// Differential oracle for failover runs: identical to check_differential
/// except the trace comparison uses strip_failover_events (the journal
/// comparison stays exact -- adoption must not perturb a single
/// scheduling-state byte).
[[nodiscard]] OracleReport check_failover_differential(
    const RunArtifacts& chaotic, const RunArtifacts& baseline);

/// FNV-1a 64 over a byte string (campaign digests).
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace sphinx::chaos
