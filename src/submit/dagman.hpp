#pragma once
/// \file dagman.hpp
/// DAGMan-style dependency-driven DAG execution.
///
/// Runs one abstract DAG against the grid through a Condor-G gateway:
/// releases a job when all its parents have completed, consults a
/// *callout* just before submission to decide the execution site and
/// replica sources (the extension point the paper highlights: "DAGMan has
/// been extended to provide a call-out to a customizable, external
/// procedure just before job execution", section 5).  Used standalone it
/// reproduces "the way things are done today" baselines; SPHINX plugs its
/// server-side planner into the same callout shape.

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "submit/condor_g.hpp"
#include "workflow/dag.hpp"

namespace sphinx::submit {

/// Decision returned by the callout for one ready job.
struct Placement {
  SiteId site;
  std::vector<StagedInput> inputs;  ///< resolved replica sources
};

/// The pre-submission callout: picks where a ready job runs.  Returning
/// nullopt defers the job; DAGMan retries it on the next progress event.
using PlacementCallout = std::function<std::optional<Placement>(
    const workflow::JobSpec&)>;

/// Completion notification for the whole DAG.
using DagDoneCallback = std::function<void(DagId, SimTime finished_at)>;

class DagMan {
 public:
  /// \param max_retries per-job resubmission budget on held/failed events.
  DagMan(CondorG& gateway, workflow::Dag dag, UserId user, std::string vo,
         PlacementCallout callout, DagDoneCallback on_done,
         int max_retries = 3);

  /// Releases the root jobs.  \param now current simulation time.
  void start(SimTime now);

  [[nodiscard]] bool finished() const noexcept {
    return completed_.size() == dag_.size();
  }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] std::size_t completed_jobs() const noexcept {
    return completed_.size();
  }
  [[nodiscard]] std::size_t resubmissions() const noexcept { return retries_; }
  [[nodiscard]] const workflow::Dag& dag() const noexcept { return dag_; }

 private:
  void release_ready(SimTime now);
  void submit_job(JobId id, SimTime now);
  void on_event(const GatewayEvent& event);

  CondorG& gateway_;
  workflow::Dag dag_;
  UserId user_;
  std::string vo_;
  PlacementCallout callout_;
  DagDoneCallback on_done_;
  int max_retries_;

  std::unordered_set<JobId> completed_;
  std::unordered_set<JobId> active_;
  std::unordered_map<JobId, int> attempts_;
  std::size_t retries_ = 0;
  bool failed_ = false;
  bool done_notified_ = false;
};

}  // namespace sphinx::submit
