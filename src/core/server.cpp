#include "core/server.hpp"

#include "common/contracts.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace sphinx::core {

using rpc::XrValue;

SphinxServer::SphinxServer(rpc::MessageBus& bus,
                           std::vector<CatalogSite> catalog,
                           data::ReplicaLocationService& rls,
                           data::TransferService& transfers,
                           const monitor::MonitoringService* monitoring,
                           ServerConfig config)
    : SphinxServer(bus, std::move(catalog), rls, transfers, monitoring,
                   std::move(config), std::make_unique<DataWarehouse>()) {}

SphinxServer::SphinxServer(rpc::MessageBus& bus,
                           std::vector<CatalogSite> catalog,
                           data::ReplicaLocationService& rls,
                           data::TransferService& transfers,
                           const monitor::MonitoringService* monitoring,
                           ServerConfig config,
                           std::unique_ptr<DataWarehouse> warehouse)
    : bus_(bus),
      config_(std::move(config)),
      warehouse_(std::move(warehouse)) {
  SPHINX_ASSERT(!catalog.empty(), "server needs a non-empty site catalog");

  // The pipeline modules share the warehouse; the work queue inside it is
  // how one stage hands a DAG to the next.
  message_handler_ = std::make_unique<MessageHandler>(
      *warehouse_, config_, stats_,
      [this](DagId dag) { maybe_finish_dag(dag); });
  message_handler_->set_on_speculation_resolved(
      [this](const SpeculationRecord& race, SpeculationState final_state) {
        on_speculation_resolved(race, final_state);
      });
  reducer_ = std::make_unique<DagReducer>(*warehouse_, rls, stats_);
  planner_ = std::make_unique<Planner>(*warehouse_, std::move(catalog), rls,
                                       transfers, monitoring, config_, stats_);
  detector_ =
      std::make_unique<StragglerDetector>(*warehouse_, monitoring, config_);
  // The detector cursor is journaled soft state like the strategy
  // cursors: a recovered server resumes the crashed instance's cadence.
  if (const std::string stored =
          warehouse_->scheduler_state("speculation.last_check");
      !stored.empty()) {
    last_speculation_check_ = std::strtod(stored.c_str(), nullptr);
  }

  rpc::AuthzPolicy policy;
  for (const std::string& vo : config_.allowed_vos) policy.allow_vo("*", vo);
  service_ = std::make_unique<rpc::ClarensService>(bus_, config_.endpoint,
                                                   std::move(policy));
  // The server's own outgoing identity (host certificate proxy).
  const rpc::Proxy host_proxy(
      rpc::Identity{"/CN=" + config_.endpoint, "/CN=iGOC CA"}, "ivdgl", {},
      bus_.engine().now(), hours(24 * 365));
  out_ = std::make_unique<rpc::ClarensClient>(bus_, config_.endpoint + "/out",
                                              host_proxy);
  // Outbound calls are journaled (rpc_outbox) so a journal-recovered
  // server re-arms the identical retry schedule its predecessor had in
  // flight; the sequence counter is persisted on each first transmission
  // (retransmissions only refresh the existing row).
  out_->set_outbox(
      [this](std::uint64_t seq, const std::string& service,
             const std::string& payload, int attempt, SimTime at) {
        if (attempt == 1) {
          warehouse_->set_scheduler_state("rpc.out_seq", std::to_string(seq));
        }
        warehouse_->outbox_upsert(seq, service, payload, attempt, at);
      },
      [this](std::uint64_t seq) { warehouse_->outbox_erase(seq); });
  if (const std::string stored = warehouse_->scheduler_state("rpc.out_seq");
      !stored.empty()) {
    out_->set_next_seq(std::strtoull(stored.c_str(), nullptr, 10) + 1);
  }
  for (const OutboxEntry& entry : warehouse_->outbox_entries()) {
    out_->restore_call(entry.seq, entry.service, entry.payload, entry.attempt,
                       entry.last_sent_at, [this](auto result) {
                         if (!result.has_value()) {
                           log_.warn("restored call failed: ",
                                     result.error().to_string());
                         }
                       });
  }
  register_methods();

  // A recovered warehouse carries the crashed instance's checkpoint
  // image; resuming the policy cursors from it keeps the recovered
  // server checkpointing in lockstep with an uncrashed baseline run.
  // A fresh warehouse has no image, and the cursors stay at zero.
  if (const auto& image = warehouse_->checkpoint_image(); image.has_value()) {
    last_checkpoint_seq_ = image->seq;
    last_checkpoint_at_ = image->at;
  }

  control_ = std::make_unique<sim::PeriodicProcess>(
      bus_.engine(), config_.endpoint + ":control", config_.sweep_period,
      [this] { sweep(); }, config_.sweep_phase);
}

Expected<std::unique_ptr<SphinxServer>> SphinxServer::recover(
    rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
    data::ReplicaLocationService& rls, data::TransferService& transfers,
    const monitor::MonitoringService* monitoring, ServerConfig config,
    const db::Journal& journal) {
  auto warehouse = DataWarehouse::recover_from(journal);
  if (!warehouse) return Unexpected<Error>{warehouse.error()};
  // The recovered warehouse carries everything: tables, indexes (from the
  // journaled schema), rebuilt work queues and outstanding counters.
  // In-flight plans were already sent; jobs stuck in kPlanned will be
  // re-reported by the client tracker (or time out and be replanned), so
  // no plan is lost permanently.
  return std::unique_ptr<SphinxServer>(new SphinxServer(
      bus, std::move(catalog), rls, transfers, monitoring, std::move(config),
      std::move(*warehouse)));
}

Expected<std::unique_ptr<SphinxServer>> SphinxServer::recover(
    rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
    data::ReplicaLocationService& rls, data::TransferService& transfers,
    const monitor::MonitoringService* monitoring, ServerConfig config,
    const CheckpointImage& checkpoint, const db::Journal& journal) {
  auto warehouse = DataWarehouse::recover_from(checkpoint, journal);
  if (!warehouse) return Unexpected<Error>{warehouse.error()};
  return std::unique_ptr<SphinxServer>(new SphinxServer(
      bus, std::move(catalog), rls, transfers, monitoring, std::move(config),
      std::move(*warehouse)));
}

SphinxServer::~SphinxServer() = default;

void SphinxServer::start() { control_->start(); }
void SphinxServer::start_at(SimTime t) { control_->start_at(t); }
void SphinxServer::stop() { control_->stop(); }

SimTime SphinxServer::next_sweep_at() const noexcept {
  return control_->next_fire_at();
}

void SphinxServer::arm_crash_hook(std::size_t journal_records,
                                  std::function<void()> hook,
                                  bool mid_checkpoint) {
  crash_at_records_ = journal_records;
  crash_hook_ = std::move(hook);
  crash_mid_checkpoint_ = mid_checkpoint && crash_hook_ != nullptr;
}

void SphinxServer::maybe_crash() {
  // Mid-checkpoint arms fire only from inside maybe_checkpoint()'s hook
  // window, never at regular event boundaries.
  if (crash_hook_ == nullptr || crash_mid_checkpoint_) return;
  // Thresholds count total records ever appended (next_seq), not the
  // retained suffix, so a crash point means the same thing whether or
  // not compaction ran before it.
  if (warehouse_->journal().next_seq() < crash_at_records_) return;
  // Move-out first: the hook typically schedules this server's own
  // destruction and must never fire twice.
  std::function<void()> hook = std::move(crash_hook_);
  crash_hook_ = nullptr;
  hook();
}

void SphinxServer::maybe_checkpoint() {
  const std::uint64_t next_seq = warehouse_->journal().next_seq();
  const SimTime now = bus_.engine().now();
  const bool by_records =
      config_.checkpoint_every_records > 0 &&
      next_seq >= last_checkpoint_seq_ + config_.checkpoint_every_records;
  const bool by_period =
      config_.checkpoint_period > 0 &&
      now >= last_checkpoint_at_ + config_.checkpoint_period;
  if (!by_records && !by_period) return;
  if (next_seq == last_checkpoint_seq_) {
    // Nothing appended since the last image; a new one would be
    // identical.  Re-arm the period trigger so idle stretches do not
    // checkpoint every sweep.
    last_checkpoint_at_ = now;
    return;
  }

  const DataWarehouse::CheckpointStats stats = warehouse_->checkpoint(
      now, [this](const CheckpointImage& image) {
        // Observability rides publication, before the mid-checkpoint kill
        // window below, so baseline and crashed-here traces agree on
        // every event up to the crash itself.
        if (recorder_ != nullptr) {
          const auto compacted =
              static_cast<double>(warehouse_->journal().size());
          recorder_->event(obs::TraceKind::kCheckpoint, config_.endpoint,
                           "", "seq:" + std::to_string(image.seq), compacted);
          recorder_->count(config_.endpoint, "server.checkpoints");
          recorder_->observe(config_.endpoint,
                             "server.checkpoint_snapshot_bytes",
                             static_cast<double>(image.database.size()));
          recorder_->observe(config_.endpoint, "server.checkpoint_compacted",
                             compacted);
        }
        if (crash_mid_checkpoint_ && crash_hook_ != nullptr &&
            warehouse_->journal().next_seq() >= crash_at_records_) {
          std::function<void()> hook = std::move(crash_hook_);
          crash_hook_ = nullptr;
          crash_mid_checkpoint_ = false;
          hook();
          return true;  // crashing: leave the journal untruncated
        }
        return false;
      });
  last_checkpoint_seq_ = stats.seq;
  last_checkpoint_at_ = now;
}

void SphinxServer::register_methods() {
  service_->register_method(
      "sphinx.submit_dag",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_submit_dag(params, proxy);
      });
  service_->register_method(
      "sphinx.report",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_report(params, proxy);
      });
  service_->register_method(
      "sphinx.set_quota",
      [this](const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
        return handle_set_quota(params, proxy);
      });
}

Expected<XrValue> SphinxServer::handle_submit_dag(
    const std::vector<XrValue>& params, const rpc::Proxy& proxy) {
  if (params.size() < 3 || params.size() > 5 || !params[0].is_string() ||
      !params[1].is_int()) {
    return make_error(
        "bad_request",
        "expected [client_endpoint, user_id, dag, priority?, deadline?]");
  }
  auto dag = decode_dag(params[2]);
  if (!dag) return Unexpected<Error>{dag.error()};
  const std::string& client = params[0].as_string();
  const UserId user(static_cast<std::uint64_t>(params[1].as_int()));
  double priority = 0.0;
  if (params.size() >= 4) {
    if (!params[3].is_double() && !params[3].is_int()) {
      return make_error("bad_request", "priority must be numeric");
    }
    priority = params[3].as_double();
  }
  SimTime deadline = kNever;
  if (params.size() == 5) {
    if (!params[4].is_double() && !params[4].is_int()) {
      return make_error("bad_request", "deadline must be numeric");
    }
    deadline = params[4].as_double();
  }

  const bool accepted = message_handler_->accept_dag(
      *dag, client, user, bus_.engine().now(), priority, deadline);
  if (!accepted) {
    // Duplicate delivery (retransmission past a wiped dedup cache): the
    // DAG is already stored.  Re-acknowledge with the identical reply and
    // leave journal, trace and work queue untouched.
    if (recorder_ != nullptr) {
      recorder_->count(config_.endpoint, "server.duplicate_dags");
    }
    return XrValue(dag->id().value());
  }
  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kDagReceived, config_.endpoint,
                     "dag:" + std::to_string(dag->id().value()), dag->name(),
                     static_cast<double>(dag->size()));
    recorder_->count(config_.endpoint, "server.dags_received");
  }
  log_.debug("received dag ", dag->name(), " (", dag->size(), " jobs) from ",
             client, " [", proxy.principal(), "]");
  maybe_crash();
  return XrValue(dag->id().value());
}

Expected<XrValue> SphinxServer::handle_report(
    const std::vector<XrValue>& params, const rpc::Proxy&) {
  if (params.size() != 1) {
    return make_error("bad_request", "expected [report]");
  }
  auto report = decode_report(params[0]);
  if (!report) return Unexpected<Error>{report.error()};
  if (const auto status = message_handler_->apply_report(*report);
      !status.ok()) {
    return Unexpected<Error>{status.error()};
  }
  maybe_crash();
  return XrValue(true);
}

Expected<XrValue> SphinxServer::handle_set_quota(
    const std::vector<XrValue>& params, const rpc::Proxy&) {
  if (params.size() != 4 || !params[0].is_int() || !params[1].is_int() ||
      !params[2].is_string()) {
    return make_error("bad_request",
                      "expected [user, site, resource, limit]");
  }
  set_quota(UserId(static_cast<std::uint64_t>(params[0].as_int())),
            SiteId(static_cast<std::uint64_t>(params[1].as_int())),
            params[2].as_string(), params[3].as_double());
  maybe_crash();
  return XrValue(true);
}

void SphinxServer::set_quota(UserId user, SiteId site,
                             const std::string& resource, double limit) {
  message_handler_->set_quota(user, site, resource, limit);
}

void SphinxServer::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  warehouse_->set_recorder(recorder, config_.endpoint);
}

void SphinxServer::sweep() {
  // Control process: drain the dirty-DAG work queue once, then walk each
  // drained DAG through the pipeline stages.  DAGs the queue does not
  // name are guaranteed idle -- every transition that creates work
  // enqueues its DAG -- so the sweep costs O(changed work).  No other
  // event can interleave while a sweep runs, so the drained snapshot
  // stays consistent across the stages.
  std::vector<DagRecord> drained = warehouse_->drain_dirty_dags();

  // Idle sweeps (the overwhelming majority on a long run) are not traced;
  // the begin/end pair brackets sweeps that had work, with the drained
  // queue depth on begin and the plan count on end.
  if (recorder_ != nullptr && !drained.empty()) {
    recorder_->event(obs::TraceKind::kSweepBegin, config_.endpoint, "", "",
                     static_cast<double>(drained.size()));
  }
  const std::size_t plans_before = stats_.plans_sent;

  // Stage 1: the reducer consumes received DAGs.  A fully-reduced DAG can
  // finish right here (all outputs already existed).
  for (const DagRecord& dag : drained) {
    if (dag.state != DagState::kReceived) continue;
    reducer_->reduce(dag);
    maybe_finish_dag(dag.id);
  }

  // Stage 2: reduced DAGs advance to planning.  Re-fetch each record:
  // stage 1 may have changed its state (reduced or even finished).
  for (DagRecord& dag : drained) {
    const auto fresh = warehouse_->dag(dag.id);
    SPHINX_ASSERT(fresh.has_value(), "drained dag vanished mid-sweep");
    dag = *fresh;
    if (dag.state == DagState::kReduced) {
      warehouse_->set_dag_state(dag.id, DagState::kPlanning);
      dag.state = DagState::kPlanning;
    }
  }

  // Stage 3: the planner consumes planning DAGs.  Requests are planned by
  // priority, then submission order -- the server "provides functionality
  // for scheduling jobs from multiple users concurrently based on the
  // policy and priorities of these jobs" (paper section 5).
  std::vector<DagRecord> planning;
  planning.reserve(drained.size());
  for (const DagRecord& dag : drained) {
    if (dag.state == DagState::kPlanning) planning.push_back(dag);
  }
  if (config_.use_qos_ordering) {
    // Priority first, then earliest deadline first among equals.  The
    // drained queue is in submission order, so the stable sort leaves
    // equal-key DAGs in the same relative order a full table scan gave.
    std::stable_sort(planning.begin(), planning.end(),
                     [](const DagRecord& a, const DagRecord& b) {
                       if (a.priority != b.priority) {
                         return a.priority > b.priority;
                       }
                       return a.deadline < b.deadline;
                     });
  }
  const SimTime now = bus_.engine().now();
  for (const DagRecord& dag : planning) {
    Planner::Outcome outcome = planner_->plan_dag(dag, now);
    for (const ExecutionPlan& plan : outcome.plans) {
      send_plan(dag.client, plan);
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kPlanSent, config_.endpoint,
                         "job:" + std::to_string(plan.job.value()),
                         "site:" + std::to_string(plan.site.value()),
                         static_cast<double>(plan.attempt));
        recorder_->count(config_.endpoint, "server.plans");
        if (plan.attempt > 1) {
          recorder_->count(config_.endpoint, "server.replans");
        } else {
          // Planning latency for first attempts: submission -> plan.
          // Replans are excluded; their latency measures the failure
          // path, not the planner.
          recorder_->observe(config_.endpoint, "server.plan_latency",
                             now - dag.received_at);
        }
      }
    }
    // Blocked or unplaceable jobs are retried every sweep, like the old
    // full-scan control process did.
    if (outcome.jobs_left_unplanned) warehouse_->mark_dag_dirty(dag.id);
  }

  // Straggler defense: after regular planning, scan the in-flight jobs
  // for stragglers and race replicas against them (its own cadence; a
  // no-op when speculation is off).
  maybe_speculate();

  if (recorder_ != nullptr && !drained.empty()) {
    recorder_->event(obs::TraceKind::kSweepEnd, config_.endpoint, "", "",
                     static_cast<double>(stats_.plans_sent - plans_before));
    recorder_->observe(config_.endpoint, "server.sweep_depth",
                       static_cast<double>(drained.size()));
  }

  // Every sweep leaves the DAGs it touched in a sound state; scoped to
  // the touched DAGs so the check is also O(changed work).  Compiled out
  // with the rest of the contracts layer.
  for (const DagRecord& dag : drained) {
    warehouse_->check_dag_invariants(dag.id);
  }

  // Checkpoint before the crash point: a sweep that crosses a checkpoint
  // trigger publishes its image even if a fail-stop lands on the same
  // boundary -- matching a real server, which checkpoints as part of its
  // sweep and can die right after.
  maybe_checkpoint();

  // Chaos fail-stop point: crashes happen at event boundaries, after the
  // sweep committed its journal records, never mid-transaction.
  maybe_crash();
}

void SphinxServer::maybe_speculate() {
  if (!config_.speculate) return;
  const SimTime now = bus_.engine().now();
  if (now < last_speculation_check_ + config_.speculation_check_period) {
    return;
  }
  last_speculation_check_ = now;
  // Round-trip-exact persistence: the recovered server must compare the
  // identical cursor value or its cadence drifts off the baseline's.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", now);
  warehouse_->set_scheduler_state("speculation.last_check", buf);

  const auto racing = warehouse_->racing_speculations();
  std::size_t global = racing.size();
  std::unordered_map<std::uint64_t, std::size_t> per_dag;
  for (const SpeculationRecord& r : racing) ++per_dag[r.dag.value()];

  for (const JobState state : {JobState::kSubmitted, JobState::kRunning}) {
    if (global >= config_.speculation_max_global) break;
    for (const JobRecord& job : warehouse_->jobs_in_state(state)) {
      if (global >= config_.speculation_max_global) break;
      // A job already racing is tracked by its replica attempt; never
      // stack a second replica on it.
      if (warehouse_->active_speculation(job.id).has_value()) continue;
      const StragglerVerdict verdict = detector_->classify(job, now);
      if (verdict == StragglerVerdict::kStaleMonitor) {
        ++stats_.detector_stale_skips;
        if (recorder_ != nullptr) {
          recorder_->count(config_.endpoint, "detector.stale_skips");
        }
        continue;
      }
      if (verdict != StragglerVerdict::kStraggler) continue;
      if (per_dag[job.dag.value()] >= config_.speculation_max_per_dag) {
        continue;
      }
      const auto dag = warehouse_->dag(job.dag);
      SPHINX_ASSERT(dag.has_value(), "straggler's dag vanished");
      const auto plan = planner_->plan_speculative(*dag, job, now);
      if (!plan.has_value()) continue;  // no alternative feasible site
      ++global;
      ++per_dag[job.dag.value()];
      ++stats_.speculations;
      if (recorder_ != nullptr) {
        recorder_->event(obs::TraceKind::kSpeculationLaunched,
                         config_.endpoint,
                         "job:" + std::to_string(job.id.value()),
                         "site:" + std::to_string(job.site.value()) + "->" +
                             std::to_string(plan->site.value()),
                         static_cast<double>(plan->attempt));
        recorder_->count(config_.endpoint, "server.speculations");
      }
      send_plan(dag->client, *plan);
    }
  }

  // Fan-out budget contract: a detector pass never leaves more open
  // races than the budgets allow.
  const bool budgets_respected = [&] {
    const auto open = warehouse_->racing_speculations();
    if (open.size() > config_.speculation_max_global) return false;
    std::unordered_map<std::uint64_t, std::size_t> by_dag;
    for (const SpeculationRecord& r : open) {
      if (++by_dag[r.dag.value()] > config_.speculation_max_per_dag) {
        return false;
      }
    }
    return true;
  }();
  SPHINX_POSTCONDITION(budgets_respected,
                       "speculation fan-out budgets respected after detector pass");
}

void SphinxServer::on_speculation_resolved(const SpeculationRecord& race,
                                           SpeculationState final_state) {
  const bool primary_won = final_state == SpeculationState::kPrimaryWon;
  const bool won = primary_won || final_state == SpeculationState::kSpecWon;
  const int retired_attempt =
      (final_state == SpeculationState::kSpecWon ||
       final_state == SpeculationState::kPrimaryDead)
          ? race.primary_attempt
          : race.spec_attempt;
  if (recorder_ != nullptr) {
    if (won) {
      recorder_->event(obs::TraceKind::kSpeculationWon, config_.endpoint,
                       "job:" + std::to_string(race.job.value()),
                       primary_won ? "primary" : "spec",
                       static_cast<double>(primary_won ? race.primary_attempt
                                                       : race.spec_attempt));
      recorder_->count(config_.endpoint,
                       primary_won ? "server.speculations_won_primary"
                                   : "server.speculations_won_spec");
    }
    recorder_->event(
        obs::TraceKind::kSpeculationCancelled, config_.endpoint,
        "job:" + std::to_string(race.job.value()),
        won ? "loser-cancel"
            : (final_state == SpeculationState::kPrimaryDead ? "primary_dead"
                                                             : "spec_dead"),
        static_cast<double>(retired_attempt));
  }
  if (!won) return;  // the dead side's tracker entry is already gone
  // First completion won: tell the client to kill the loser attempt.
  // Idempotent on the client, journaled in the outbox like every
  // server -> client call, so a crash cannot lose the cancel.
  ++stats_.speculation_cancels;
  if (recorder_ != nullptr) {
    recorder_->count(config_.endpoint, "server.speculation_cancels");
  }
  if (const auto dag = warehouse_->dag(race.dag); dag.has_value()) {
    out_->call(dag->client, "sphinx_client.cancel_attempt",
               {XrValue(race.job.value()),
                XrValue(static_cast<std::int64_t>(retired_attempt))},
               [](auto) {});
  }
}

void SphinxServer::send_plan(const std::string& client,
                             const ExecutionPlan& plan) {
  out_->call(client, "sphinx_client.execute_plan", {encode_plan(plan)},
             [this, job = plan.job](auto result) {
               if (!result.has_value()) {
                 // Client unreachable: the job stays kPlanned; the
                 // client's tracker (or its absence) will eventually
                 // surface as a cancellation and a replan.
                 log_.warn("plan delivery failed for job ", job.value(), ": ",
                           result.error().to_string());
               }
             });
}

void SphinxServer::maybe_finish_dag(DagId dag_id) {
  const auto dag = warehouse_->dag(dag_id);
  if (!dag.has_value() || dag->state == DagState::kFinished) return;
  const auto jobs = warehouse_->jobs_of_dag(dag_id);
  const bool all_done =
      std::all_of(jobs.begin(), jobs.end(), [](const JobRecord& job) {
        return job.state == JobState::kCompleted;
      });
  if (!all_done) return;
  const SimTime now = bus_.engine().now();
  warehouse_->set_dag_finished(dag_id, now);
  if (recorder_ != nullptr) {
    recorder_->event(obs::TraceKind::kDagFinished, config_.endpoint,
                     "dag:" + std::to_string(dag_id.value()), dag->name,
                     now - dag->received_at);
    recorder_->observe(config_.endpoint, "dag.turnaround",
                       now - dag->received_at);
  }
  out_->call(dag->client, "sphinx_client.dag_done",
             {XrValue(dag_id.value()), XrValue(now)}, [](auto) {});
}

}  // namespace sphinx::core
