#pragma once
/// \file shard.hpp
/// Shard naming and assignment for multi-scheduler deployments.
///
/// The paper's section 4.3 starts "multiple instances of SPHINX servers
/// ... at the same time"; the control plane (ctrl/) partitions the DAG
/// workload across those instances by *shard*.  A shard is a stable
/// string identity ("shard:<i>") that outlives any particular owning
/// scheduler: leases (lease.hpp) bind a shard to its current owner, and
/// adoption rebinds the shard without renaming it, so every trace and
/// journal keyed by shard reads the same before and after a failover.

#include <cstddef>
#include <string>

namespace sphinx::ctrl {

/// Round-robin shard assignment for the k-th DAG of a campaign.  Pure
/// arithmetic on submission order, so the chaotic run and its baseline
/// route every DAG identically by construction.
[[nodiscard]] constexpr std::size_t shard_of(std::size_t k,
                                             std::size_t shards) noexcept {
  return shards == 0 ? 0 : k % shards;
}

/// Canonical shard identity: "shard:<index>".
[[nodiscard]] std::string shard_name(std::size_t index);

/// Canonical scheduler-instance name: "scheduler#<index>".  The '#' is
/// deliberate -- shard-qualified names exercise the RPC dedup-key
/// escaping (ClarensService::dedup_key).
[[nodiscard]] std::string scheduler_name(std::size_t index);

}  // namespace sphinx::ctrl
