# Empty dependencies file for sweep_seeds.
# This may be replaced when dependencies are built.
