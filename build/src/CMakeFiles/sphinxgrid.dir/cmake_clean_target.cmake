file(REMOVE_RECURSE
  "libsphinxgrid.a"
)
