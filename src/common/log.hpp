#pragma once
/// \file log.hpp
/// Minimal leveled logger.
///
/// The simulator is quiet by default (benchmarks print their own tables);
/// logging exists for debugging runs and for the examples, which narrate
/// what the middleware is doing.  A global level gate keeps disabled
/// logging cheap.

#include <sstream>
#include <string>

namespace sphinx {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
LogLevel& global_level() noexcept;
void emit(LogLevel level, const std::string& component, const std::string& msg);
}  // namespace log_detail

/// Sets the process-wide log level; returns the previous level.
LogLevel set_log_level(LogLevel level) noexcept;
/// Current process-wide log level.
[[nodiscard]] LogLevel log_level() noexcept;

/// Component-scoped logger.  Cheap to copy; holds only the component name.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(const Args&... args) const { write(LogLevel::kTrace, args...); }
  template <typename... Args>
  void debug(const Args&... args) const { write(LogLevel::kDebug, args...); }
  template <typename... Args>
  void info(const Args&... args) const { write(LogLevel::kInfo, args...); }
  template <typename... Args>
  void warn(const Args&... args) const { write(LogLevel::kWarn, args...); }
  template <typename... Args>
  void error(const Args&... args) const { write(LogLevel::kError, args...); }

  [[nodiscard]] const std::string& component() const noexcept { return component_; }

 private:
  template <typename... Args>
  void write(LogLevel level, const Args&... args) const {
    if (level < log_detail::global_level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    log_detail::emit(level, component_, oss.str());
  }

  std::string component_;
};

}  // namespace sphinx
