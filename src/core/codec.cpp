#include "core/codec.hpp"

namespace sphinx::core {

using rpc::XrValue;

const char* to_string(ReportKind kind) noexcept {
  switch (kind) {
    case ReportKind::kSubmitted: return "submitted";
    case ReportKind::kRunning: return "running";
    case ReportKind::kCompleted: return "completed";
    case ReportKind::kCancelled: return "cancelled";
    case ReportKind::kHeld: return "held";
  }
  return "?";
}

namespace {

Expected<ReportKind> report_kind_from(const std::string& text) {
  if (text == "submitted") return ReportKind::kSubmitted;
  if (text == "running") return ReportKind::kRunning;
  if (text == "completed") return ReportKind::kCompleted;
  if (text == "cancelled") return ReportKind::kCancelled;
  if (text == "held") return ReportKind::kHeld;
  return make_error("codec", "unknown report kind: " + text);
}

/// Guarded struct-member access helpers.
Expected<std::int64_t> need_int(const XrValue& s, const std::string& key) {
  if (!s.has(key) || !s.at(key).is_int()) {
    return make_error("codec", "missing int member: " + key);
  }
  return s.at(key).as_int();
}

Expected<double> need_double(const XrValue& s, const std::string& key) {
  if (!s.has(key) || (!s.at(key).is_double() && !s.at(key).is_int())) {
    return make_error("codec", "missing double member: " + key);
  }
  return s.at(key).as_double();
}

Expected<std::string> need_string(const XrValue& s, const std::string& key) {
  if (!s.has(key) || !s.at(key).is_string()) {
    return make_error("codec", "missing string member: " + key);
  }
  return s.at(key).as_string();
}

}  // namespace

XrValue encode_dag(const workflow::Dag& dag) {
  XrValue::Struct root;
  root.emplace("dag_id", XrValue(dag.id().value()));
  root.emplace("name", XrValue(dag.name()));

  XrValue::Array jobs;
  for (const workflow::JobSpec& job : dag.jobs()) {
    XrValue::Struct j;
    j.emplace("job_id", XrValue(job.id.value()));
    j.emplace("name", XrValue(job.name));
    j.emplace("compute_time", XrValue(job.compute_time));
    j.emplace("output", XrValue(job.output));
    j.emplace("output_bytes", XrValue(job.output_bytes));
    XrValue::Array inputs;
    for (const data::Lfn& lfn : job.inputs) inputs.emplace_back(lfn);
    j.emplace("inputs", XrValue(std::move(inputs)));
    XrValue::Array parents;
    for (const JobId parent : dag.parents(job.id)) {
      parents.emplace_back(parent.value());
    }
    j.emplace("parents", XrValue(std::move(parents)));
    jobs.emplace_back(std::move(j));
  }
  root.emplace("jobs", XrValue(std::move(jobs)));
  return XrValue(std::move(root));
}

Expected<workflow::Dag> decode_dag(const XrValue& value) {
  if (!value.is_struct()) return make_error("codec", "dag is not a struct");
  auto dag_id = need_int(value, "dag_id");
  if (!dag_id) return Unexpected<Error>{dag_id.error()};
  auto name = need_string(value, "name");
  if (!name) return Unexpected<Error>{name.error()};
  if (!value.has("jobs") || !value.at("jobs").is_array()) {
    return make_error("codec", "dag without jobs array");
  }

  workflow::Dag dag(DagId(static_cast<std::uint64_t>(*dag_id)), *name);
  // First pass: jobs.  Second pass: edges (parents must exist first).
  std::vector<std::pair<JobId, std::vector<JobId>>> edges;
  for (const XrValue& jv : value.at("jobs").as_array()) {
    if (!jv.is_struct()) return make_error("codec", "job is not a struct");
    auto job_id = need_int(jv, "job_id");
    if (!job_id) return Unexpected<Error>{job_id.error()};
    auto job_name = need_string(jv, "name");
    if (!job_name) return Unexpected<Error>{job_name.error()};
    auto compute = need_double(jv, "compute_time");
    if (!compute) return Unexpected<Error>{compute.error()};
    auto output = need_string(jv, "output");
    if (!output) return Unexpected<Error>{output.error()};
    auto output_bytes = need_double(jv, "output_bytes");
    if (!output_bytes) return Unexpected<Error>{output_bytes.error()};
    if (!jv.has("inputs") || !jv.at("inputs").is_array() ||
        !jv.has("parents") || !jv.at("parents").is_array()) {
      return make_error("codec", "job missing inputs/parents");
    }

    workflow::JobSpec spec;
    spec.id = JobId(static_cast<std::uint64_t>(*job_id));
    spec.name = *job_name;
    spec.compute_time = *compute;
    spec.output = *output;
    spec.output_bytes = *output_bytes;
    for (const XrValue& in : jv.at("inputs").as_array()) {
      if (!in.is_string()) return make_error("codec", "input is not a string");
      spec.inputs.push_back(in.as_string());
    }
    std::vector<JobId> parents;
    for (const XrValue& p : jv.at("parents").as_array()) {
      if (!p.is_int()) return make_error("codec", "parent is not an int");
      parents.emplace_back(static_cast<std::uint64_t>(p.as_int()));
    }
    dag.add_job(std::move(spec));
    edges.emplace_back(JobId(static_cast<std::uint64_t>(*job_id)),
                       std::move(parents));
  }
  for (const auto& [child, parents] : edges) {
    for (const JobId parent : parents) {
      if (!dag.has_job(parent)) {
        return make_error("codec", "edge references unknown parent");
      }
      dag.add_edge(parent, child);
    }
  }
  if (const auto valid = dag.validate(); !valid.ok()) {
    return Unexpected<Error>{valid.error()};
  }
  return dag;
}

XrValue encode_plan(const ExecutionPlan& plan) {
  XrValue::Struct root;
  root.emplace("job_id", XrValue(plan.job.value()));
  root.emplace("dag_id", XrValue(plan.dag.value()));
  root.emplace("job_name", XrValue(plan.job_name));
  root.emplace("site", XrValue(plan.site.value()));
  root.emplace("compute_time", XrValue(plan.compute_time));
  root.emplace("output", XrValue(plan.output));
  root.emplace("output_bytes", XrValue(plan.output_bytes));
  root.emplace("attempt", XrValue(static_cast<std::int64_t>(plan.attempt)));
  root.emplace("persist_output", XrValue(plan.persist_output));
  root.emplace("persistent_site", XrValue(plan.persistent_site.value()));
  root.emplace("batch_priority", XrValue(plan.batch_priority));
  root.emplace("speculative", XrValue(plan.speculative));
  XrValue::Array inputs;
  for (const PlannedInput& input : plan.inputs) {
    XrValue::Struct i;
    i.emplace("lfn", XrValue(input.lfn));
    i.emplace("source", XrValue(input.source.value()));
    i.emplace("bytes", XrValue(input.bytes));
    inputs.emplace_back(std::move(i));
  }
  root.emplace("inputs", XrValue(std::move(inputs)));
  return XrValue(std::move(root));
}

Expected<ExecutionPlan> decode_plan(const XrValue& value) {
  if (!value.is_struct()) return make_error("codec", "plan is not a struct");
  ExecutionPlan plan;
  auto job = need_int(value, "job_id");
  if (!job) return Unexpected<Error>{job.error()};
  auto dag = need_int(value, "dag_id");
  if (!dag) return Unexpected<Error>{dag.error()};
  auto name = need_string(value, "job_name");
  if (!name) return Unexpected<Error>{name.error()};
  auto site = need_int(value, "site");
  if (!site) return Unexpected<Error>{site.error()};
  auto compute = need_double(value, "compute_time");
  if (!compute) return Unexpected<Error>{compute.error()};
  auto output = need_string(value, "output");
  if (!output) return Unexpected<Error>{output.error()};
  auto output_bytes = need_double(value, "output_bytes");
  if (!output_bytes) return Unexpected<Error>{output_bytes.error()};
  auto attempt = need_int(value, "attempt");
  if (!attempt) return Unexpected<Error>{attempt.error()};
  if (!value.has("inputs") || !value.at("inputs").is_array()) {
    return make_error("codec", "plan without inputs");
  }
  plan.job = JobId(static_cast<std::uint64_t>(*job));
  plan.dag = DagId(static_cast<std::uint64_t>(*dag));
  plan.job_name = *name;
  plan.site = SiteId(static_cast<std::uint64_t>(*site));
  plan.compute_time = *compute;
  plan.output = *output;
  plan.output_bytes = *output_bytes;
  plan.attempt = static_cast<int>(*attempt);
  if (value.has("persist_output") && value.at("persist_output").is_bool()) {
    plan.persist_output = value.at("persist_output").as_bool();
  }
  if (value.has("persistent_site") && value.at("persistent_site").is_int()) {
    plan.persistent_site = SiteId(
        static_cast<std::uint64_t>(value.at("persistent_site").as_int()));
  }
  if (value.has("batch_priority")) {
    plan.batch_priority = value.at("batch_priority").as_double();
  }
  if (value.has("speculative") && value.at("speculative").is_bool()) {
    plan.speculative = value.at("speculative").as_bool();
  }
  for (const XrValue& iv : value.at("inputs").as_array()) {
    auto lfn = need_string(iv, "lfn");
    if (!lfn) return Unexpected<Error>{lfn.error()};
    auto source = need_int(iv, "source");
    if (!source) return Unexpected<Error>{source.error()};
    auto bytes = need_double(iv, "bytes");
    if (!bytes) return Unexpected<Error>{bytes.error()};
    plan.inputs.push_back(PlannedInput{
        *lfn, SiteId(static_cast<std::uint64_t>(*source)), *bytes});
  }
  return plan;
}

XrValue encode_report(const TrackerReport& report) {
  XrValue::Struct root;
  root.emplace("job_id", XrValue(report.job.value()));
  root.emplace("kind", XrValue(std::string(to_string(report.kind))));
  root.emplace("site", XrValue(report.site.value()));
  root.emplace("at", XrValue(report.at));
  root.emplace("completion_time", XrValue(report.completion_time));
  root.emplace("execution_time", XrValue(report.execution_time));
  root.emplace("idle_time", XrValue(report.idle_time));
  root.emplace("attempt", XrValue(static_cast<std::int64_t>(report.attempt)));
  return XrValue(std::move(root));
}

Expected<TrackerReport> decode_report(const XrValue& value) {
  if (!value.is_struct()) return make_error("codec", "report is not a struct");
  TrackerReport report;
  auto job = need_int(value, "job_id");
  if (!job) return Unexpected<Error>{job.error()};
  auto kind_text = need_string(value, "kind");
  if (!kind_text) return Unexpected<Error>{kind_text.error()};
  auto kind = report_kind_from(*kind_text);
  if (!kind) return Unexpected<Error>{kind.error()};
  auto site = need_int(value, "site");
  if (!site) return Unexpected<Error>{site.error()};
  auto at = need_double(value, "at");
  if (!at) return Unexpected<Error>{at.error()};
  auto completion = need_double(value, "completion_time");
  if (!completion) return Unexpected<Error>{completion.error()};
  auto execution = need_double(value, "execution_time");
  if (!execution) return Unexpected<Error>{execution.error()};
  auto idle = need_double(value, "idle_time");
  if (!idle) return Unexpected<Error>{idle.error()};
  report.job = JobId(static_cast<std::uint64_t>(*job));
  report.kind = *kind;
  report.site = SiteId(static_cast<std::uint64_t>(*site));
  report.at = *at;
  report.completion_time = *completion;
  report.execution_time = *execution;
  report.idle_time = *idle;
  if (value.has("attempt") && value.at("attempt").is_int()) {
    report.attempt = static_cast<int>(value.at("attempt").as_int());
  }
  return report;
}

}  // namespace sphinx::core
