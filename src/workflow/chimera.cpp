#include "workflow/chimera.hpp"

#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace sphinx::workflow {

void VirtualDataCatalog::add_transformation(Transformation t) {
  transformations_[t.name] = std::move(t);
}

StatusOrError VirtualDataCatalog::add_derivation(Derivation d) {
  if (!transformations_.contains(d.transformation)) {
    return make_error("vdc_unknown_transformation",
                      "no transformation named " + d.transformation);
  }
  if (derivations_.contains(d.output)) {
    return make_error("vdc_duplicate_output",
                      d.output + " already has a derivation");
  }
  derivations_.emplace(d.output, std::move(d));
  return {};
}

bool VirtualDataCatalog::can_derive(const data::Lfn& lfn) const noexcept {
  return derivations_.contains(lfn);
}

Expected<Dag> VirtualDataCatalog::request(const data::Lfn& target,
                                          IdSpace& ids,
                                          const std::string& dag_name) const {
  if (!can_derive(target)) {
    return make_error("vdc_not_derivable", "no derivation yields " + target);
  }

  Dag dag(ids.dags.next(), dag_name);
  std::unordered_map<data::Lfn, JobId> job_of_output;
  std::unordered_set<data::Lfn> in_progress;  // cycle detection

  // Depth-first compile; returns the job id producing `lfn`.
  std::function<Expected<JobId>(const data::Lfn&)> compile =
      [&](const data::Lfn& lfn) -> Expected<JobId> {
    if (const auto it = job_of_output.find(lfn); it != job_of_output.end()) {
      return it->second;
    }
    if (in_progress.contains(lfn)) {
      return make_error("vdc_cycle", "derivation cycle through " + lfn);
    }
    in_progress.insert(lfn);
    const Derivation& d = derivations_.at(lfn);
    const Transformation& t = transformations_.at(d.transformation);

    // Compile derivable inputs first so parents exist before edges.
    std::vector<JobId> parent_jobs;
    for (const data::Lfn& input : d.inputs) {
      if (!derivations_.contains(input)) continue;  // pre-existing file
      auto parent = compile(input);
      if (!parent) return parent;
      parent_jobs.push_back(*parent);
    }

    JobSpec job;
    job.id = ids.jobs.next();
    job.name = d.transformation + "(" + d.output + ")";
    job.compute_time = t.compute_time;
    job.inputs = d.inputs;
    job.output = d.output;
    job.output_bytes = d.output_bytes;
    dag.add_job(job);
    for (const JobId parent : parent_jobs) dag.add_edge(parent, job.id);

    in_progress.erase(lfn);
    job_of_output.emplace(lfn, job.id);
    return job.id;
  };

  auto root = compile(target);
  if (!root) return Unexpected<Error>{root.error()};
  SPHINX_ASSERT(dag.validate().ok(), "VDC compiled an invalid DAG");
  return dag;
}

}  // namespace sphinx::workflow
