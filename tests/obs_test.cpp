// Tests for the flight recorder: trace serialization, metric
// aggregation, recorder wiring, the GMA bridge, file export, and the
// headline property -- two same-seed runs produce byte-identical
// trace + metrics output.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "exp/runner.hpp"
#include "monitor/gma.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace sphinx::obs {
namespace {

// --- serialization primitives ---------------------------------------------

TEST(FormatDouble, DeterministicShortestForm) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-2.5), "-2.5");
  EXPECT_EQ(format_double(0.1), "0.1");
  // Non-finite values are quoted strings so the JSON stays valid.
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()),
            "\"nan\"");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(TraceEvent, JsonHasFixedKeyOrder) {
  TraceEvent event;
  event.at = 12.5;
  event.kind = TraceKind::kPlanSent;
  event.source = "sphinx-server/t";
  event.subject = "job:7";
  event.detail = "site:3";
  event.value = 2.0;
  EXPECT_EQ(event.to_json(),
            "{\"t\":12.5,\"kind\":\"plan_sent\",\"src\":\"sphinx-server/t\","
            "\"subj\":\"job:7\",\"detail\":\"site:3\",\"v\":2}");
}

TEST(TraceSink, EnforcesMonotonicTime) {
  TraceSink sink;
  TraceEvent event;
  event.at = 10.0;
  sink.record(event);
  event.at = 10.0;  // equal timestamps are fine (same engine tick)
  sink.record(event);
  event.at = 20.0;
  sink.record(event);
  EXPECT_EQ(sink.size(), 3u);
  event.at = 5.0;  // time travel is a contract violation
  EXPECT_THROW(sink.record(event), ContractViolation);
}

TEST(TraceSink, JsonlIsOneObjectPerLine) {
  TraceSink sink;
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.at = i;
    event.kind = TraceKind::kSweepBegin;
    event.source = "s";
    sink.record(event);
  }
  const std::string jsonl = sink.to_jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(jsonl.find("\"t\":0"), 1u);  // first line starts at {"t":0
}

// --- metric set ------------------------------------------------------------

TEST(MetricSet, CountersAndHistograms) {
  MetricSet metrics;
  EXPECT_EQ(metrics.counter("missing"), 0u);
  EXPECT_EQ(metrics.histogram("missing"), nullptr);
  metrics.add("a");
  metrics.add("a", 4);
  metrics.add("b");
  EXPECT_EQ(metrics.counter("a"), 5u);
  EXPECT_EQ(metrics.counter("b"), 1u);
  metrics.observe("lat", 1.0);
  metrics.observe("lat", 3.0);
  const auto* histogram = metrics.histogram("lat");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->stats.count(), 2u);
  EXPECT_DOUBLE_EQ(histogram->stats.mean(), 2.0);
  EXPECT_EQ(histogram->samples.size(), 2u);
}

TEST(MetricSet, JsonIsOrderedAndStable) {
  MetricSet metrics;
  metrics.add("z.counter", 2);
  metrics.add("a.counter", 1);
  metrics.observe("h", 4.0);
  const std::string json = metrics.to_json();
  // std::map storage: "a.counter" serializes before "z.counter" no
  // matter the insertion order.
  EXPECT_LT(json.find("a.counter"), json.find("z.counter"));
  EXPECT_NE(json.find("\"count\": 1, \"mean\": 4"), std::string::npos);
  // Serialization is a pure function of the contents.
  EXPECT_EQ(json, metrics.to_json());
}

// --- recorder --------------------------------------------------------------

TEST(Recorder, QualifiedNamesAndEngineStamping) {
  EXPECT_EQ(Recorder::qualified_name("n", "src"), "n@src");
  EXPECT_EQ(Recorder::qualified_name("n", ""), "n");

  sim::Engine engine;
  Recorder recorder(engine);
  engine.schedule_at(7.0, "emit", [&] {
    recorder.event(TraceKind::kSweepBegin, "srv", "", "", 3.0);
    recorder.count("srv", "sweeps");
    recorder.observe("srv", "depth", 3.0);
  });
  engine.run_until();
  ASSERT_EQ(recorder.trace().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.trace().events().front().at, 7.0);
  EXPECT_EQ(recorder.counter("sweeps", "srv"), 1u);
  EXPECT_EQ(recorder.counter("sweeps", "other"), 0u);
  const auto* histogram = recorder.histogram("depth", "srv");
  ASSERT_NE(histogram, nullptr);
  EXPECT_DOUBLE_EQ(histogram->stats.mean(), 3.0);
}

TEST(Recorder, BridgeMirrorsRegistryMetrics) {
  sim::Engine engine;
  Recorder recorder(engine);
  monitor::MetricRegistry registry;
  recorder.bridge(registry, "monitor");

  registry.publish({"queue.length", SiteId(3), 5.0, 0.0, "test"});
  registry.publish({"cpu.free", SiteId(1), 2.0, 0.0, "test"});

  ASSERT_EQ(recorder.trace().size(), 2u);
  const auto& first = recorder.trace().events().front();
  EXPECT_EQ(first.kind, TraceKind::kMonitorSample);
  EXPECT_EQ(first.subject, "site:3");
  EXPECT_EQ(first.detail, "queue.length");
  EXPECT_DOUBLE_EQ(first.value, 5.0);
  const auto* histogram = recorder.histogram("queue.length", "monitor");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->stats.count(), 1u);
}

// --- export ----------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, got);
  }
  std::fclose(file);
  return out;
}

TEST(Export, WritesSerializedFormsVerbatim) {
  TraceSink sink;
  TraceEvent event;
  event.at = 1.0;
  event.source = "s";
  sink.record(event);
  MetricSet metrics;
  metrics.add("c", 3);

  const std::string trace_path = ::testing::TempDir() + "obs_trace.jsonl";
  const std::string metrics_path = ::testing::TempDir() + "obs_metrics.json";
  ASSERT_TRUE(write_trace_jsonl(sink, trace_path).ok());
  ASSERT_TRUE(write_metrics_json(metrics, metrics_path).ok());
  EXPECT_EQ(slurp(trace_path), sink.to_jsonl());
  EXPECT_EQ(slurp(metrics_path), metrics.to_json());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Export, UnwritablePathReportsIoError) {
  const auto result = write_trace_jsonl(TraceSink{}, "/nonexistent/dir/x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "io_error");
}

// --- the headline property -------------------------------------------------

TEST(Determinism, SameSeedRunsProduceByteIdenticalRecordings) {
  const auto record = [] {
    exp::ExperimentConfig config;
    config.scenario.seed = 11;
    config.scenario.site_failures = true;   // exercise outage tracing
    config.scenario.background_load = true;
    config.dag_count = 2;
    config.horizon = hours(6);
    exp::TenantOptions no_feedback;
    no_feedback.algorithm = core::Algorithm::kRoundRobin;
    no_feedback.use_feedback = false;
    exp::Experiment experiment(config);
    (void)experiment.run(
        {{"fb", exp::TenantOptions{}}, {"nofb", no_feedback}});
    const auto& recorder = experiment.recorder();
    EXPECT_FALSE(recorder.trace().empty());
    return std::pair{recorder.trace().to_jsonl(),
                     recorder.metrics().to_json()};
  };
  const auto a = record();
  const auto b = record();
  EXPECT_EQ(a.first, b.first);    // trace.jsonl
  EXPECT_EQ(a.second, b.second);  // metrics.json
}

}  // namespace
}  // namespace sphinx::obs
