/// \file one.cpp
/// Fixture: module src/alpha declares stream "shared-label"...

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int alpha_draw(const Seeds& seeds) { return seeds.stream("shared-label"); }

}  // namespace fixture
