#pragma once
/// \file export.hpp
/// File export for the flight recorder: trace.jsonl + metrics.json.
///
/// Serialization itself lives on TraceSink/MetricSet (pure, in-memory,
/// deterministic); this is only the I/O shim.  A path of "-" writes to
/// stdout so tools can pipe a trace without touching the filesystem.

#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sphinx::obs {

/// Writes the trace as JSON Lines to `path` ("-" = stdout).
[[nodiscard]] StatusOrError write_trace_jsonl(const TraceSink& trace,
                                              const std::string& path);

/// Writes the metric set as a JSON document to `path` ("-" = stdout).
[[nodiscard]] StatusOrError write_metrics_json(const MetricSet& metrics,
                                               const std::string& path);

}  // namespace sphinx::obs
