/// \file main.cpp
/// sphinx-lint command-line driver.
///
/// Usage:
///   sphinx_lint [--root DIR] [--list-rules] [DIR-OR-FILE...]
///
/// Scans the given directories/files (default: src tests bench examples,
/// skipping any that do not exist) relative to --root (default: the
/// current directory).  Prints one line per finding and exits 1 if any
/// rule fired, 0 on a clean tree, 2 on usage or IO errors.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "linter.hpp"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using sphinx::lint::Finding;

  fs::path root = ".";
  std::vector<std::string> entries;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "sphinx-lint: --root needs an argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& [rule, description] : sphinx::lint::rule_list()) {
        std::cout << rule << "\t" << description << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sphinx_lint [--root DIR] [--list-rules] "
                   "[DIR-OR-FILE...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sphinx-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      entries.push_back(arg);
    }
  }
  if (entries.empty()) {
    for (const char* candidate : {"src", "tests", "bench", "examples"}) {
      std::error_code ec;
      if (fs::is_directory(root / candidate, ec)) {
        entries.emplace_back(candidate);
      }
    }
    if (entries.empty()) {
      std::cerr << "sphinx-lint: nothing to scan under " << root << "\n";
      return 2;
    }
  }

  std::vector<std::string> errors;
  const std::vector<Finding> findings =
      sphinx::lint::lint_tree(root, entries, &errors);
  for (const std::string& error : errors) {
    std::cerr << "sphinx-lint: " << error << "\n";
  }
  for (const Finding& finding : findings) {
    std::cout << finding.to_string() << "\n";
  }
  if (!findings.empty()) {
    std::cout << "sphinx-lint: " << findings.size() << " problem(s)\n";
    return 1;
  }
  if (!errors.empty()) return 2;
  return 0;
}
