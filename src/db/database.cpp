#include "db/database.hpp"

namespace sphinx::db {

Database::Database() = default;
Database::~Database() = default;

Table& Database::create_table(const std::string& name, Schema schema) {
  SPHINX_ASSERT(!tables_.contains(name), "table already exists: " + name);
  if (journaling_) {
    JournalEntry entry;
    entry.op = JournalEntry::Op::kCreateTable;
    entry.table = name;
    entry.schema = schema.columns();
    journal_.append(std::move(entry));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_observer(this);
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  creation_order_.push_back(name);
  return ref;
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  SPHINX_ASSERT(it != tables_.end(), "no such table: " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const noexcept {
  return tables_.contains(name);
}

std::vector<std::string> Database::table_names() const {
  return creation_order_;
}

StatusOr Database::recover(const Journal& journal) {
  if (!tables_.empty()) {
    return make_error("recover_nonempty",
                      "recover() requires an empty database");
  }
  for (const JournalEntry& e : journal.entries()) {
    switch (e.op) {
      case JournalEntry::Op::kCreateTable: {
        if (tables_.contains(e.table)) {
          return make_error("recover_replay", "duplicate table: " + e.table);
        }
        create_table(e.table, Schema(e.schema));
        break;
      }
      case JournalEntry::Op::kInsert: {
        if (!tables_.contains(e.table)) {
          return make_error("recover_replay", "insert into missing table");
        }
        table(e.table).insert_with_id(e.row, e.cells);
        break;
      }
      case JournalEntry::Op::kUpdate: {
        if (!tables_.contains(e.table) ||
            !table(e.table).update(e.row, e.column, e.cells.at(0))) {
          return make_error("recover_replay", "update of missing row");
        }
        break;
      }
      case JournalEntry::Op::kErase: {
        if (!tables_.contains(e.table) || !table(e.table).erase(e.row)) {
          return make_error("recover_replay", "erase of missing row");
        }
        break;
      }
    }
  }
  return {};
}

void Database::on_insert(const std::string& table, RowId id,
                         const std::vector<Value>& cells) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kInsert;
  entry.table = table;
  entry.row = id;
  entry.cells = cells;
  journal_.append(std::move(entry));
}

void Database::on_update(const std::string& table, RowId id,
                         std::size_t column, const Value& value) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kUpdate;
  entry.table = table;
  entry.row = id;
  entry.column = column;
  entry.cells = {value};
  journal_.append(std::move(entry));
}

void Database::on_erase(const std::string& table, RowId id) {
  if (!journaling_) return;
  JournalEntry entry;
  entry.op = JournalEntry::Op::kErase;
  entry.table = table;
  entry.row = id;
  journal_.append(std::move(entry));
}

}  // namespace sphinx::db
