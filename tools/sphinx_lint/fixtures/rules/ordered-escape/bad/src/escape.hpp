#pragma once
/// \file escape.hpp
/// Fixture: the tainted container is declared in the header while the
/// escaping loop lives in escape.cpp -- exercising the cross-file taint
/// sharing (the gridftp shape that motivated the rule).

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

class Tracker {
 public:
  void snapshot(std::vector<std::uint64_t>& out) const;
  double drain();

 private:
  std::unordered_map<std::uint64_t, double> active_;
};

}  // namespace fixture
