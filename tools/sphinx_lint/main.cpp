/// \file main.cpp
/// sphinx-lint command-line driver.
///
/// Usage:
///   sphinx_lint [--root DIR] [--list-rules] [--explain RULE]
///               [--only RULE[,RULE...]] [--json] [--rng-registry]
///               [DIR-OR-FILE...]
///
/// Scans the given directories/files (default: src tests bench examples
/// tools, skipping any that do not exist) relative to --root (default:
/// the current directory).  Prints one line per finding -- or a JSON
/// array with --json -- and exits 1 if any rule fired, 0 on a clean
/// tree, 2 on usage or IO errors.  --rng-registry instead prints the
/// extracted stream registry as the markdown committed to
/// docs/rng_streams.md (the check.sh gate diffs the two).

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "linter.hpp"

namespace {

std::vector<std::string> split_commas(const std::string& arg) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : arg) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using sphinx::lint::Finding;

  fs::path root = ".";
  std::vector<std::string> entries;
  std::vector<std::string> only;
  bool json = false;
  bool registry = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "sphinx-lint: --root needs an argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& [rule, description] : sphinx::lint::rule_list()) {
        std::cout << rule << "\t" << description << "\n";
      }
      return 0;
    } else if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::cerr << "sphinx-lint: --explain needs a rule id\n";
        return 2;
      }
      const std::string text = sphinx::lint::rule_explain(argv[++i]);
      if (text.empty()) {
        std::cerr << "sphinx-lint: unknown rule " << argv[i]
                  << " (see --list-rules)\n";
        return 2;
      }
      std::cout << text << "\n";
      return 0;
    } else if (arg == "--only") {
      if (i + 1 >= argc) {
        std::cerr << "sphinx-lint: --only needs a rule list\n";
        return 2;
      }
      for (std::string& rule : split_commas(argv[++i])) {
        if (sphinx::lint::rule_explain(rule).empty()) {
          std::cerr << "sphinx-lint: unknown rule " << rule
                    << " (see --list-rules)\n";
          return 2;
        }
        only.push_back(std::move(rule));
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--rng-registry") {
      registry = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sphinx_lint [--root DIR] [--list-rules] "
                   "[--explain RULE] [--only RULE[,RULE...]] [--json] "
                   "[--rng-registry] [DIR-OR-FILE...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sphinx-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      entries.push_back(arg);
    }
  }
  if (entries.empty()) {
    for (const char* candidate : {"src", "tests", "bench", "examples",
                                  "tools"}) {
      std::error_code ec;
      if (fs::is_directory(root / candidate, ec)) {
        entries.emplace_back(candidate);
      }
    }
    if (entries.empty()) {
      std::cerr << "sphinx-lint: nothing to scan under " << root << "\n";
      return 2;
    }
  }

  const sphinx::lint::TreeReport report =
      sphinx::lint::analyze_tree(root, entries, only);
  for (const std::string& error : report.errors) {
    std::cerr << "sphinx-lint: " << error << "\n";
  }
  if (registry) {
    std::cout << sphinx::lint::rng_registry_markdown(report.streams);
    return report.errors.empty() ? 0 : 2;
  }
  if (json) {
    std::cout << sphinx::lint::findings_json(report.findings);
  } else {
    for (const Finding& finding : report.findings) {
      std::cout << finding.to_string() << "\n";
    }
    if (!report.findings.empty()) {
      std::cout << "sphinx-lint: " << report.findings.size()
                << " problem(s)\n";
    }
  }
  if (!report.findings.empty()) return 1;
  if (!report.errors.empty()) return 2;
  return 0;
}
