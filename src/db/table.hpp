#pragma once
/// \file table.hpp
/// Schema'd in-memory tables with secondary indexes.
///
/// Tables are the inter-module communication fabric of the SPHINX server:
/// one module writes a row in a new state, the control process reads rows
/// by state and wakes the module responsible for that state (paper
/// section 3.2).  Rows are addressed by a stable RowId so the journal can
/// replay mutations.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "db/value.hpp"

namespace sphinx::db {

/// Stable identifier of a row within one table.
using RowId = std::uint64_t;
inline constexpr RowId kInvalidRow = 0;

/// Column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;  ///< kNull means "any type accepted"
  /// Declares a hash index on this column at table creation.  The flag is
  /// part of the schema, so it is journaled with kCreateTable entries and
  /// recovery rebuilds the same indexes automatically.
  bool indexed = false;
};

/// Shorthand for declaring an indexed column in a schema literal.
[[nodiscard]] inline Column indexed(std::string name, ValueType type) {
  return Column{std::move(name), type, true};
}

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols);
  explicit Schema(std::vector<Column> cols);

  [[nodiscard]] std::size_t size() const noexcept { return columns_.size(); }
  [[nodiscard]] const Column& at(std::size_t i) const { return columns_.at(i); }
  /// Index of a named column; throws AssertionError if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }

  /// Checks that `row` matches arity and column types (null always allowed).
  [[nodiscard]] bool accepts(const std::vector<Value>& row) const noexcept;

  /// Checks one cell against column `i`'s declared type (null always
  /// allowed, ints widen to reals).
  [[nodiscard]] bool accepts_cell(std::size_t i, const Value& v) const noexcept;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

/// A materialized row: id + cells.
struct Row {
  RowId id = kInvalidRow;
  std::vector<Value> cells;
};

/// Observer invoked on every committed mutation; the journal subscribes.
struct TableObserver {
  virtual ~TableObserver() = default;
  virtual void on_insert(const std::string& table, RowId id,
                         const std::vector<Value>& cells) = 0;
  virtual void on_update(const std::string& table, RowId id,
                         std::size_t column, const Value& value) = 0;
  virtual void on_erase(const std::string& table, RowId id) = 0;
};

/// One table.  Insertions get monotonically increasing RowIds; indexes are
/// hash indexes on a single column maintained incrementally.  Columns
/// marked `indexed` in the schema get their index at construction.
class Table {
 public:
  Table(std::string name, Schema schema);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Inserts a row; returns its id.  Throws AssertionError on schema
  /// mismatch (callers construct rows from typed code, not user input).
  RowId insert(std::vector<Value> cells);

  /// Inserts preserving a specific id -- used only by journal replay.
  void insert_with_id(RowId id, std::vector<Value> cells);

  /// The id the next insert() will allocate.  Part of the table's
  /// persistent state: erasing the newest row does not rewind it, so a
  /// checkpoint snapshot must carry it explicitly.
  [[nodiscard]] RowId next_id() const noexcept { return next_id_; }

  /// Restores the allocation cursor from a checkpoint snapshot.  Only
  /// ever moves the cursor forward (row inserts already advanced it to
  /// max(id)+1; the snapshot cursor can sit higher when tail rows were
  /// erased before the snapshot).
  void restore_next_id(RowId next_id);

  /// Updates one cell.  Returns false if the row does not exist.
  bool update(RowId id, const std::string& column, Value value);
  bool update(RowId id, std::size_t column, Value value);

  /// Removes a row.  Returns false if absent.
  bool erase(RowId id);

  /// Row lookup; nullptr if absent.  Pointer invalidated by mutations.
  [[nodiscard]] const Row* find(RowId id) const;

  /// Reads one cell; throws if the row is missing.
  [[nodiscard]] const Value& get(RowId id, const std::string& column) const;

  /// Declares a hash index on `column` (idempotent).
  void create_index(const std::string& column);

  /// All row ids whose `column` equals `value`.  Uses the index when one
  /// exists, otherwise scans.  Ids are returned in id (= insertion)
  /// order on both paths: index buckets are kept id-ordered so query
  /// results are a function of table *state*, never of update history
  /// (checkpoint restore rebuilds buckets from rows alone and must
  /// reproduce the live instance's iteration order exactly).
  [[nodiscard]] std::vector<RowId> find_by(const std::string& column,
                                           const Value& value) const;

  /// First (lowest-id) row whose `column` equals `value`; nullptr when no
  /// row matches.  The hot-path accessor for unique-key lookups: unlike
  /// find_by it does not materialize an id vector.  Pointer invalidated
  /// by mutations.
  [[nodiscard]] const Row* find_first(const std::string& column,
                                      const Value& value) const;

  /// Row ids matching an arbitrary predicate, in insertion order.
  [[nodiscard]] std::vector<RowId> select(
      const std::function<bool(const Row&)>& pred) const;

  /// Visits every row in insertion order.
  void for_each(const std::function<void(const Row&)>& fn) const;

  /// Number of rows whose `column` equals `value`.
  [[nodiscard]] std::size_t count_by(const std::string& column,
                                     const Value& value) const;

  void set_observer(TableObserver* observer) noexcept { observer_ = observer; }

  /// Queries that fell back to a full table scan because the column had
  /// no index (counted only in contract-enabled builds).  A hot-path
  /// query showing up here means a missing `indexed` schema declaration;
  /// the first scan per column is also logged at warn level.
  [[nodiscard]] std::uint64_t full_scans() const noexcept {
    return full_scans_;
  }

  /// Structural sweep: every row matches the schema, row ids stay below
  /// the allocation cursor, and every index bucket mirrors the rows it
  /// claims to cover.  Throws ContractViolation on corruption; a no-op
  /// when contracts are compiled out.
  void check_invariants() const;

 private:
  friend struct TableInspector;  // test-only fault injection
  void index_insert(const Row& row);
  void index_erase(const Row& row);
  void note_full_scan(std::size_t column) const;

  std::string name_;
  Schema schema_;
  std::map<RowId, Row> rows_;  // ordered: insertion order == id order
  RowId next_id_ = 1;
  // column index -> (value text+type key -> row ids).  The outer map is
  // ordered so per-index maintenance loops replay identically (rule
  // ordered-escape); the inner bucket map is only probed, never walked
  // in an order-sensitive way.
  std::map<std::size_t, std::unordered_map<std::string, std::vector<RowId>>>
      indexes_;
  TableObserver* observer_ = nullptr;
  mutable std::uint64_t full_scans_ = 0;
  mutable std::vector<bool> scan_logged_;  // per column, first-scan log gate
};

}  // namespace sphinx::db
