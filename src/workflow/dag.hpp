#pragma once
/// \file dag.hpp
/// Abstract workflow DAGs: jobs with data dependencies.
///
/// A DAG is the unit of scheduling in SPHINX: a user hands the client an
/// *abstract* plan (logical I/O dependencies only; no sites), the server
/// reduces and plans it job by job.  Edges are implied by data (a child
/// consumes a parent's output LFN) but are also stored explicitly so the
/// structure survives reduction.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "data/lfn.hpp"

namespace sphinx::workflow {

/// One job of an abstract DAG.
struct JobSpec {
  JobId id;
  std::string name;
  Duration compute_time = 60.0;   ///< nominal seconds on a speed-1 CPU
  std::vector<data::Lfn> inputs;  ///< logical inputs (parent outputs and/or
                                  ///< pre-existing files)
  data::Lfn output;               ///< the single logical output
  double output_bytes = 0.0;
};

/// An abstract DAG.
class Dag {
 public:
  Dag() = default;
  Dag(DagId id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] DagId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  /// Adds a job; its id must be unique within the DAG.
  void add_job(JobSpec job);

  /// Declares `child` dependent on `parent` (both must exist).  Duplicate
  /// edges are ignored.
  void add_edge(JobId parent, JobId child);

  [[nodiscard]] bool has_job(JobId id) const noexcept;
  [[nodiscard]] const JobSpec& job(JobId id) const;
  /// Jobs in insertion order.
  [[nodiscard]] const std::vector<JobSpec>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] const std::vector<JobId>& parents(JobId id) const;
  [[nodiscard]] const std::vector<JobId>& children(JobId id) const;

  /// Jobs whose parents are all in `completed` and are not themselves in
  /// `completed` -- the planner's "ready set" (paper section 3.2, step 1).
  [[nodiscard]] std::vector<JobId> ready_jobs(
      const std::unordered_set<JobId>& completed) const;

  /// Jobs with no parents.
  [[nodiscard]] std::vector<JobId> roots() const;

  /// Topological order; error if the graph has a cycle.
  [[nodiscard]] Expected<std::vector<JobId>> topological_order() const;

  /// Structural validation: acyclic, and every edge parent's output is
  /// actually consumed by the child (data consistency).
  [[nodiscard]] StatusOrError validate() const;

 private:
  [[nodiscard]] std::size_t index_of(JobId id) const;

  DagId id_;
  std::string name_;
  std::vector<JobSpec> jobs_;
  std::unordered_map<JobId, std::size_t> index_;
  std::vector<std::vector<JobId>> parents_;
  std::vector<std::vector<JobId>> children_;
};

}  // namespace sphinx::workflow
