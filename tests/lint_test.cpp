// In-process coverage for every sphinx-lint rule (tools/sphinx_lint).
// Each case feeds a snippet through lint_source and checks which rules
// fire; the fixture trees under tools/sphinx_lint/fixtures are exercised
// end-to-end by the lint.fixtures_* ctest cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "linter.hpp"

namespace {

using sphinx::lint::Finding;
using sphinx::lint::lint_source;

std::vector<std::string> rules_fired(const std::string& source,
                                     const std::string& path) {
  std::vector<std::string> out;
  for (const Finding& f : lint_source(source, path)) out.push_back(f.rule);
  return out;
}

bool fired(const std::vector<std::string>& rules, const std::string& rule) {
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(SphinxLint, CleanSourcePasses) {
  const std::string src = R"cpp(
    int add(int a, int b) { return a + b; }
  )cpp";
  EXPECT_TRUE(lint_source(src, "src/core/foo.cpp").empty());
}

TEST(SphinxLint, FlagsWallClocks) {
  const auto rules = rules_fired(
      "auto t = std::chrono::system_clock::now();\n"
      "auto u = std::chrono::steady_clock::now();\n"
      "auto v = time(nullptr);\n"
      "auto w = std::time(NULL);\n",
      "src/sim/foo.cpp");
  EXPECT_EQ(rules.size(), 4u);
  EXPECT_TRUE(fired(rules, "sim-clock"));
}

TEST(SphinxLint, MemberNamedTimeIsNotAClock) {
  const auto rules = rules_fired(
      "double t = event.time();\n"
      "double u = ptr->time();\n"
      "double v = compute_time(job);\n",
      "src/sim/foo.cpp");
  EXPECT_FALSE(fired(rules, "sim-clock"));
}

TEST(SphinxLint, FlagsAmbientRandomness) {
  const auto rules = rules_fired(
      "int a = rand();\n"
      "srand(42);\n"
      "std::random_device rd;\n",
      "tests/foo_test.cpp");
  EXPECT_EQ(rules.size(), 3u);
  EXPECT_TRUE(fired(rules, "sim-random"));
}

TEST(SphinxLint, WhitelistExemptsRngAndTimeHeaders) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/common/strings.cpp"), "sim-random"));
  EXPECT_FALSE(fired(rules_fired(src, "src/common/rng.hpp"), "sim-random"));
  EXPECT_FALSE(fired(rules_fired(src, "src/common/time.hpp"), "sim-random"));
}

TEST(SphinxLint, CommentsAndStringsAreStripped) {
  const auto rules = rules_fired(
      "// rand() and system_clock in a comment\n"
      "/* srand(1); time(nullptr); */\n"
      "const char* s = \"rand() inside a string\";\n"
      "const char* r = R\"(random_device in a raw string)\";\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(rules.empty());
}

TEST(SphinxLint, DigitSeparatorsAreNotCharLiterals) {
  // A bad tokenizer would treat 1'000'000 as opening a char literal and
  // blank out the rand() call that follows.
  const auto rules = rules_fired(
      "long big = 1'000'000;\n"
      "int bad = rand();\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(fired(rules, "sim-random"));
}

TEST(SphinxLint, FlagsDiscardedCallResults) {
  const auto rules = rules_fired(
      "(void)se->store(user, lfn, bytes);\n"
      "(void)dag.validate();\n",
      "src/data/foo.cpp");
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_TRUE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, VoidCastOfVariableIsAllowed) {
  const auto rules = rules_fired(
      "(void)unused_parameter;\n"
      "int f(void);\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, GtestThrowAssertionsAreExempt) {
  const auto rules = rules_fired(
      "EXPECT_THROW((void)e.value(), AssertionError);\n"
      "ASSERT_THROW((void)s.error(), AssertionError);\n",
      "src/core/foo.cpp");
  EXPECT_FALSE(fired(rules, "discarded-status"));
}

TEST(SphinxLint, DiscardedStatusIsLibraryScoped) {
  // Tests and benches discard handles (submission ids, selector picks)
  // deliberately; the rule only polices library code.
  const std::string src = "(void)site.submit(job, nullptr);\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/grid/foo.cpp"),
                    "discarded-status"));
  EXPECT_FALSE(fired(rules_fired(src, "tests/foo_test.cpp"),
                     "discarded-status"));
  EXPECT_FALSE(fired(rules_fired(src, "bench/foo.cpp"), "discarded-status"));
}

TEST(SphinxLint, FlagsNakedThrows) {
  const auto rules = rules_fired(
      "void f() { throw std::runtime_error(\"boom\"); }\n"
      "void g() { throw 42; }\n",
      "src/core/foo.cpp");
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_TRUE(fired(rules, "naked-throw"));
}

TEST(SphinxLint, AssertionErrorThrowsAreLegal) {
  const auto rules = rules_fired(
      "throw AssertionError(\"bad state\");\n"
      "throw ::sphinx::AssertionError(\"bad state\");\n"
      "throw ::sphinx::ContractViolation(\"broken invariant\");\n"
      "try { f(); } catch (...) { throw; }\n",
      "src/core/foo.cpp");
  EXPECT_TRUE(rules.empty());
}

TEST(SphinxLint, FlagsIostreamInLibraryCodeOnly) {
  const std::string src = "#include <iostream>\n";
  EXPECT_TRUE(fired(rules_fired(src, "src/core/foo.cpp"), "iostream-include"));
  EXPECT_FALSE(fired(rules_fired(src, "tests/foo_test.cpp"),
                     "iostream-include"));
  EXPECT_FALSE(fired(rules_fired(src, "bench/foo.cpp"), "iostream-include"));
}

TEST(SphinxLint, HeaderHygiene) {
  const auto bad = rules_fired("#ifndef GUARD\n#define GUARD\n#endif\n",
                               "src/core/foo.hpp");
  EXPECT_TRUE(fired(bad, "pragma-once"));
  EXPECT_TRUE(fired(bad, "file-comment"));

  const auto good = rules_fired(
      "#pragma once\n/// \\file foo.hpp\n/// Does things.\n",
      "src/core/foo.hpp");
  EXPECT_TRUE(good.empty());

  // Sources are not held to header hygiene.
  EXPECT_TRUE(rules_fired("int x;\n", "src/core/foo.cpp").empty());
}

TEST(SphinxLint, InlineAllowWaivesARule) {
  const auto rules = rules_fired(
      "int a = rand();  // sphinx-lint-allow(sim-random): seeding torture\n"
      "int b = rand();\n",
      "src/core/foo.cpp");
  EXPECT_EQ(rules.size(), 1u);  // only the unwaived line fires
}

TEST(SphinxLint, FindingsCarryPathLineAndRule) {
  const auto findings = lint_source("int x;\nint y = rand();\n",
                                    "src/core/foo.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/foo.cpp");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "sim-random");
  EXPECT_NE(findings[0].to_string().find("src/core/foo.cpp:2:"),
            std::string::npos);
}

}  // namespace
