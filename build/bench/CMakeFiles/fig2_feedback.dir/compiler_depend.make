# Empty compiler generated dependencies file for fig2_feedback.
# This may be replaced when dependencies are built.
