#pragma once
/// \file codec.hpp
/// XML-RPC encodings of the client/server message payloads.
///
/// Everything that crosses the client/server boundary is a real XML-RPC
/// value that is serialized to XML and parsed back on the other side:
/// abstract DAGs (client -> server), execution plans (server -> client),
/// and tracker reports (client -> server).

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "data/lfn.hpp"
#include "rpc/xmlrpc.hpp"
#include "workflow/dag.hpp"

namespace sphinx::core {

/// One input of an execution plan: which replica to stage from where.
struct PlannedInput {
  data::Lfn lfn;
  SiteId source;
  double bytes = 0.0;
};

/// The planner's decision for one job (paper section 3.2, Planner).
struct ExecutionPlan {
  JobId job;
  DagId dag;
  std::string job_name;
  SiteId site;
  Duration compute_time = 60.0;
  std::vector<PlannedInput> inputs;
  data::Lfn output;
  double output_bytes = 0.0;
  int attempt = 1;
  /// Planner step 4: whether the output must be copied to persistent
  /// storage once the job completes, and where.
  bool persist_output = false;
  SiteId persistent_site;
  /// QoS: within-VO batch priority forwarded to the site (bounded nudge
  /// derived from the request's priority and deadline).
  double batch_priority = 0.0;
  /// Straggler defense: this plan replicates a still-live earlier attempt
  /// and races it (first completion wins) instead of replacing it.
  bool speculative = false;
};

/// What the tracker tells the server about a job (section 3.3).
enum class ReportKind {
  kSubmitted,  ///< handed to the site's gatekeeper
  kRunning,    ///< started executing (carries idle time so far)
  kCompleted,  ///< carries completion + execution + idle durations
  kCancelled,  ///< tracker cancelled it (timeout); requests replanning
  kHeld,       ///< site held/failed it; requests replanning
};

[[nodiscard]] const char* to_string(ReportKind kind) noexcept;

struct TrackerReport {
  JobId job;
  ReportKind kind = ReportKind::kSubmitted;
  SiteId site;
  SimTime at = 0.0;
  Duration completion_time = 0.0;  ///< submit -> complete (kCompleted)
  Duration execution_time = 0.0;   ///< run start -> complete (kCompleted)
  Duration idle_time = 0.0;        ///< submit -> run start
  /// Which (job, attempt) this report describes.  0 = unknown (legacy
  /// payloads); the server then attributes it to the job's live attempt.
  /// Required for speculation: two attempts race concurrently and the
  /// arbitration rules key off which one reported.
  int attempt = 0;
};

/// DAG <-> XML-RPC value.
[[nodiscard]] rpc::XrValue encode_dag(const workflow::Dag& dag);
[[nodiscard]] Expected<workflow::Dag> decode_dag(const rpc::XrValue& value);

/// Plan <-> XML-RPC value.
[[nodiscard]] rpc::XrValue encode_plan(const ExecutionPlan& plan);
[[nodiscard]] Expected<ExecutionPlan> decode_plan(const rpc::XrValue& value);

/// Report <-> XML-RPC value.
[[nodiscard]] rpc::XrValue encode_report(const TrackerReport& report);
[[nodiscard]] Expected<TrackerReport> decode_report(const rpc::XrValue& value);

}  // namespace sphinx::core
