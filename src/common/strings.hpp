#pragma once
/// \file strings.hpp
/// Small string helpers shared by the XML layer, ClassAds, and reports.

#include <string>
#include <string_view>
#include <vector>

namespace sphinx {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Joins the pieces with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Formats a double with `digits` fraction digits (no trailing cleanup).
[[nodiscard]] std::string format_double(double v, int digits = 2);

/// Formats a byte count as a human-friendly string ("12.5 MB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Formats a duration in seconds as "1h 02m 03s" / "42s".
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace sphinx
