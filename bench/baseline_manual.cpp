/// Baseline: "the way that jobs are scheduled on the grid today" (paper
/// section 2) versus SPHINX.
///
/// The manual user runs plain DAGMan against Condor-G and picks sites by
/// static CPU counts ("the decision to send how many jobs to a site is
/// usually based on some static information like the number of CPUs"),
/// retrying failed jobs by hand (resubmission budget).  SPHINX runs the
/// completion-time strategy with feedback on the same grid at the same
/// time.  The manual user has no tracker: a job lost to an unresponsive
/// site simply stalls until the user "notices" (a long per-job patience
/// window) and resubmits.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "data/replication.hpp"
#include "submit/dagman.hpp"
#include "workflow/generator.hpp"

int main() {
  using namespace sphinx;
  using namespace sphinx::bench;

  print_header("Baseline",
               "manual DAGMan user vs SPHINX (30 dags x 10 jobs/dag)");

  exp::ExperimentConfig config = paper_config(30);
  exp::Scenario scenario(config.scenario);

  // Tenant 1: SPHINX with the completion-time strategy.
  exp::TenantOptions options;
  options.algorithm = core::Algorithm::kCompletionTime;
  exp::Tenant& sphinx_tenant = scenario.add_tenant("sphinx", options);

  // Tenant 2: the manual user -- a bare gateway, no SPHINX.
  submit::CondorG manual_gateway(scenario.grid(), scenario.transfers(),
                                 scenario.rls(), nullptr, "manual");

  auto generator_a = scenario.make_generator("shared", config.workload);
  auto generator_b = scenario.make_generator("shared", config.workload);
  const auto sphinx_dags = generator_a.generate_batch("s", config.dag_count);
  const auto manual_dags = generator_b.generate_batch("m", config.dag_count);

  // The manual user's placement: weighted round-robin by catalog CPUs
  // (static!), inputs resolved from the RLS at submission time.
  const auto catalog = scenario.catalog();
  auto cursor = std::make_shared<std::size_t>(0);
  const submit::PlacementCallout manual_callout =
      [&scenario, catalog, cursor](const workflow::JobSpec& spec)
      -> std::optional<submit::Placement> {
    // Build the CPU-weighted site sequence lazily.
    static thread_local std::vector<SiteId> weighted;
    if (weighted.empty()) {
      for (const auto& site : catalog) {
        const int share = std::max(1, site.cpus / 40);
        for (int i = 0; i < share; ++i) weighted.push_back(site.id);
      }
    }
    submit::Placement placement;
    placement.site = weighted[(*cursor)++ % weighted.size()];
    for (const auto& lfn : spec.inputs) {
      const auto replicas = scenario.rls().locate(lfn);
      if (replicas.empty()) return std::nullopt;  // wait for parent output
      const auto choice = data::select_replica(replicas, placement.site,
                                               scenario.transfers());
      placement.inputs.push_back(submit::StagedInput{
          lfn, choice->replica.site, choice->replica.size_bytes});
    }
    return placement;
  };

  std::vector<std::unique_ptr<submit::DagMan>> dagmen;
  std::size_t manual_done = 0;
  RunningStats manual_completion;
  std::vector<SimTime> manual_started(manual_dags.size());

  scenario.start();
  scenario.engine().schedule_at(10.0, "submit", [&] {
    for (std::size_t k = 0; k < manual_dags.size(); ++k) {
      manual_started[k] = scenario.engine().now();
      dagmen.push_back(std::make_unique<submit::DagMan>(
          manual_gateway, manual_dags[k], UserId(999), "uscms",
          manual_callout,
          [&, k](DagId, SimTime at) {
            ++manual_done;
            manual_completion.add(at - manual_started[k]);
          },
          /*max_retries=*/5));
      dagmen.back()->start(scenario.engine().now());
      sphinx_tenant.client->submit(sphinx_dags[k]);
    }
  });
  // Manual users have no tracker: poke stuck DAGMan jobs periodically by
  // force-removing anything idle for very long ("the application user has
  // to re-submit the failed jobs again" -- after noticing, much later).
  sim::PeriodicProcess babysitter(
      scenario.engine(), "manual-babysit", minutes(45), [&] {
        for (const auto& dag : manual_dags) {
          for (const auto& job : dag.jobs()) {
            const auto state = manual_gateway.state_of(job.id);
            if (state.has_value() &&
                (*state == submit::GatewayJobState::kIdle ||
                 *state == submit::GatewayJobState::kSubmitted)) {
              (void)manual_gateway.cancel(job.id);  // triggers DAGMan retry
            }
          }
        }
      },
      minutes(45));
  babysitter.start();

  // Run until both sides are done (or the horizon hits).
  sim::PeriodicProcess watchdog(
      scenario.engine(), "baseline-watch", 60.0, [&] {
        if (manual_done == manual_dags.size() &&
            sphinx_tenant.client->all_dags_finished()) {
          scenario.engine().stop();
        }
      },
      60.0);
  watchdog.start();
  scenario.engine().run_until(config.horizon);

  std::printf("\n%-24s %-12s %-16s %-14s\n", "approach", "dags done",
              "avg dag (s)", "reschedules");
  std::size_t manual_retries = 0;
  std::size_t manual_failed = 0;
  for (const auto& dagman : dagmen) {
    manual_retries += dagman->resubmissions();
    if (dagman->failed()) ++manual_failed;
  }
  std::printf("%-24s %zu/%zu%s %-16.1f %-14zu\n", "manual (static CPUs)",
              manual_done, manual_dags.size(),
              manual_failed > 0 ? "*" : " ", manual_completion.mean(),
              manual_retries);
  std::printf("%-24s %zu/%zu  %-16.1f %-14zu\n", "SPHINX (completion-time)",
              sphinx_tenant.client->dags_finished(), sphinx_dags.size(),
              sphinx_tenant.client->avg_dag_completion(),
              sphinx_tenant.server->stats().replans);
  if (manual_failed > 0) {
    std::printf("  * %zu manual DAGs exhausted their retry budget and died\n",
                manual_failed);
  }
  if (manual_completion.mean() > 0) {
    std::printf("\nSPHINX completes DAGs %.1fx faster than the manual "
                "baseline\n",
                manual_completion.mean() /
                    sphinx_tenant.client->avg_dag_completion());
  }
  return 0;
}
