file(REMOVE_RECURSE
  "CMakeFiles/ablation_softstate.dir/ablation_softstate.cpp.o"
  "CMakeFiles/ablation_softstate.dir/ablation_softstate.cpp.o.d"
  "ablation_softstate"
  "ablation_softstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_softstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
