#pragma once
/// \file table.hpp
/// ASCII table rendering for benchmark/report output.
///
/// Each benchmark binary prints the same rows/series the paper's figure
/// reports; this helper keeps that output aligned and uniform.

#include <string>
#include <vector>

namespace sphinx {

/// A simple column-aligned text table.
class TextTable {
 public:
  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);
  /// Appends a data row; must match the header width (padded if shorter).
  void add_row(std::vector<std::string> row);

  /// Renders with a separator line under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal bar chart line: label, value and a proportional
/// bar -- used by the figure benches to show series shape in a terminal.
[[nodiscard]] std::string bar_line(const std::string& label, double value,
                                   double max_value, int width = 40,
                                   const std::string& unit = "");

}  // namespace sphinx
