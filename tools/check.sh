#!/usr/bin/env sh
# One-command correctness gate: plain build + tests, the ASan+UBSan
# preset, and sphinx-lint.  Run from the repository root:
#
#   tools/check.sh          # everything
#   tools/check.sh fast     # skip the sanitizer build
set -eu

cd "$(dirname "$0")/.."

echo "== build + test (relwithdebinfo) =="
cmake --preset relwithdebinfo
cmake --build --preset relwithdebinfo
ctest --preset relwithdebinfo

echo "== sphinx-lint =="
# The full static pass: the 7 hygiene/determinism regex rules plus the
# declaration-aware analyzer rules (ordered-escape taint, rng stream
# discipline, derived-state, observe-only) over everything we compile.
# src/ctrl (the lease/failover control plane) is named explicitly: it is
# already inside src/, but the control plane must never regress on the
# determinism rules, so the gate stays loud about covering it.
./build/relwithdebinfo/tools/sphinx_lint/sphinx_lint \
  --root . src src/ctrl tests bench examples tools

echo "== rng stream registry gate =="
# docs/rng_streams.md is generated from the seeds.stream() literals the
# analyzer extracts; the committed copy must match byte-for-byte.
./build/relwithdebinfo/tools/sphinx_lint/sphinx_lint \
  --root . --rng-registry src tests bench examples tools \
  > build/relwithdebinfo/rng_streams.md
diff docs/rng_streams.md build/relwithdebinfo/rng_streams.md || {
  echo "rng registry drift: regenerate with" >&2
  echo "  sphinx_lint --rng-registry > docs/rng_streams.md" >&2
  exit 1
}
echo "rng registry: docs/rng_streams.md in sync"

echo "== flight-recorder determinism gate =="
# Two same-seed failure-enabled runs must emit byte-identical trace and
# metrics files; any nondeterminism in the pipeline shows up as a diff.
det_dir=build/relwithdebinfo/determinism
rm -rf "$det_dir"
mkdir -p "$det_dir"
./build/relwithdebinfo/tools/record/sphinx_record --seed 7 \
  --trace "$det_dir/trace_a.jsonl" --metrics "$det_dir/metrics_a.json"
./build/relwithdebinfo/tools/record/sphinx_record --seed 7 \
  --trace "$det_dir/trace_b.jsonl" --metrics "$det_dir/metrics_b.json"
diff "$det_dir/trace_a.jsonl" "$det_dir/trace_b.jsonl"
diff "$det_dir/metrics_a.json" "$det_dir/metrics_b.json"
echo "determinism gate: trace and metrics byte-identical"

echo "== lossy-network smoke gate =="
# Same run under an unreliable wire: 5% loss, 2% duplication and a 60 s
# client<->server partition.  sphinx_record itself asserts the delivery
# contract (every DAG finishes, no plan executes twice); the diff then
# proves the whole fault pipeline is deterministic.
lossy_dir=build/relwithdebinfo/lossy
rm -rf "$lossy_dir"
mkdir -p "$lossy_dir"
./build/relwithdebinfo/tools/record/sphinx_record --seed 7 \
  --loss 0.05 --duplicate 0.02 --partition-at 600 --partition-duration 60 \
  --trace "$lossy_dir/trace_a.jsonl" --metrics "$lossy_dir/metrics_a.json"
./build/relwithdebinfo/tools/record/sphinx_record --seed 7 \
  --loss 0.05 --duplicate 0.02 --partition-at 600 --partition-duration 60 \
  --trace "$lossy_dir/trace_b.jsonl" --metrics "$lossy_dir/metrics_b.json"
diff "$lossy_dir/trace_a.jsonl" "$lossy_dir/trace_b.jsonl"
diff "$lossy_dir/metrics_a.json" "$lossy_dir/metrics_b.json"
echo "lossy-network gate: delivery contract held, outputs byte-identical"

echo "== chaos smoke campaign =="
# A fixed-seed 8-run chaos campaign (scheduled outages + mid-run server
# crash/recovery, differential + invariant oracles) must pass and must
# print a byte-identical report across two invocations.  Checkpointing
# is the campaign default (checkpoint every 64 records), and each
# schedule includes a mid-checkpoint crash point -- a kill between
# checkpoint publication and journal truncation -- so the gate covers
# checkpoint + suffix recovery, not just full replay.
chaos_dir=build/relwithdebinfo/chaos
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
./build/relwithdebinfo/tools/chaos/sphinx_chaos campaign --runs 8 --seed 7 \
  --repro "$chaos_dir/chaos_repro.json" > "$chaos_dir/report_a.txt"
./build/relwithdebinfo/tools/chaos/sphinx_chaos campaign --runs 8 --seed 7 \
  --repro "$chaos_dir/chaos_repro.json" > "$chaos_dir/report_b.txt"
diff "$chaos_dir/report_a.txt" "$chaos_dir/report_b.txt"
echo "chaos gate: campaign green and byte-identical"

echo "== failover smoke gate =="
# A 2-shard failover campaign: one scheduler is fail-stop killed while a
# client<->server partition covers the handoff, and a surviving peer
# adopts the dead shard from its checkpoint + journal suffix.  Every pair
# must pass the failover differential oracle (adoption byte-invisible to
# the scheduling layer), and two invocations must print byte-identical
# reports.
failover_dir=build/relwithdebinfo/failover
rm -rf "$failover_dir"
mkdir -p "$failover_dir"
./build/relwithdebinfo/tools/chaos/sphinx_chaos failover --runs 3 --seed 7 \
  > "$failover_dir/report_a.txt"
./build/relwithdebinfo/tools/chaos/sphinx_chaos failover --runs 3 --seed 7 \
  > "$failover_dir/report_b.txt"
diff "$failover_dir/report_a.txt" "$failover_dir/report_b.txt"
echo "failover gate: adoption green and byte-identical"

echo "== straggler-defense smoke gate =="
# The speculative-replication A/B: each run executes one degraded-heavy
# outage schedule (long black-hole/degraded windows) twice with the same
# seed -- speculation OFF then ON.  The tool itself asserts the win
# condition (pooled p99 DAG completion improves, tracker timeouts do not
# increase) and exports the pooled numbers to BENCH_straggler.json; the
# diff proves the whole defense -- detector, race arbitration,
# loser-cancel -- is deterministic.
straggler_dir=build/relwithdebinfo/straggler
rm -rf "$straggler_dir"
mkdir -p "$straggler_dir"
./build/relwithdebinfo/tools/chaos/sphinx_chaos straggler --runs 6 \
  --seed 975 --json BENCH_straggler.json > "$straggler_dir/report_a.txt"
./build/relwithdebinfo/tools/chaos/sphinx_chaos straggler --runs 6 \
  --seed 975 --json BENCH_straggler.json > "$straggler_dir/report_b.txt"
diff "$straggler_dir/report_a.txt" "$straggler_dir/report_b.txt"
echo "straggler gate: p99/timeouts improved, report byte-identical"

echo "== sweep-cost benchmark =="
# The sweep must cost O(changed work): the 10,000-idle-DAG case should
# stay within ~2x of the 100-DAG case.  Results land in BENCH_sweep.json.
./build/relwithdebinfo/bench/micro_scheduler \
  --benchmark_filter=BM_SweepCost \
  --benchmark_out=BENCH_sweep.json --benchmark_out_format=json

echo "== recovery benchmark =="
# Checkpoint + suffix recovery vs full-history replay at 1k/10k/100k
# journal records.  The checkpointed path should win by well over an
# order of magnitude at 100k and retain only the post-checkpoint journal
# suffix.  Results land in BENCH_recovery.json.
./build/relwithdebinfo/bench/micro_recovery \
  --benchmark_out=BENCH_recovery.json --benchmark_out_format=json

echo "== rpc overhead benchmark =="
# Dedup-cache lookup cost plus the reliable-stack A/B at 0% loss (the
# overhead every fault-free run pays).  Results land in BENCH_rpc.json.
./build/relwithdebinfo/bench/micro_rpc \
  --benchmark_out=BENCH_rpc.json --benchmark_out_format=json

if [ "${1:-}" != "fast" ]; then
  echo "== build + test (asan-ubsan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan
fi

echo "check.sh: all gates passed"
