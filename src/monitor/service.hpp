#pragma once
/// \file service.hpp
/// Grid monitoring infrastructure (MonALISA / condor_q query-job style).
///
/// The paper's monitoring interface "uses query jobs submitted to remote
/// sites to gather information ... typical parameters being monitored
/// include various job queue lengths" (section 3.4), and its evaluation
/// hinges on that data being *imperfect*: updated on a poll period,
/// subject to reporting latency, absent while a site is down, and
/// optionally noisy.  All four imperfections are modelled explicitly.

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "monitor/gma.hpp"
#include "common/time.hpp"
#include "grid/grid.hpp"
#include "sim/engine.hpp"

namespace sphinx::monitor {

/// One monitored observation of a site.
struct SiteSnapshot {
  SiteId site;
  int cpus = 0;
  int queued = 0;
  int running = 0;
  int free_cpus = 0;
  SimTime measured_at = -1.0;  ///< when the query job actually ran
  SimTime published_at = -1.0; ///< when the value became visible
};

/// Monitoring behaviour knobs.
struct MonitorConfig {
  Duration poll_period = minutes(5);   ///< how often query jobs run
  Duration report_latency = seconds(30);  ///< delay before data is visible
  double noise = 0.0;  ///< relative noise on queue counts, e.g. 0.2 = ±20 %
  bool enabled = true;
};

/// Polls every site on a period and serves the latest published snapshot.
class MonitoringService {
 public:
  MonitoringService(sim::Engine& engine, grid::Grid& grid,
                    MonitorConfig config, Rng rng);

  /// Starts the poll loop (staggers the first polls across the period).
  void start();

  /// Attaches a GMA registry: every successful poll publishes
  /// queue.length / jobs.running / cpu.free metrics, and every poll
  /// (success or not) publishes site.alive.  Pass nullptr to detach.
  void attach_registry(MetricRegistry* registry) noexcept {
    registry_ = registry;
  }

  /// The most recent *published* snapshot of a site, or nullopt if no
  /// query has ever succeeded.  Callers must treat the timestamps as part
  /// of the data -- this is how staleness reaches schedulers.
  [[nodiscard]] std::optional<SiteSnapshot> snapshot(SiteId site) const;

  /// Convenience: age of the published data at `now`; kNever if none.
  [[nodiscard]] Duration age(SiteId site, SimTime now) const;

  /// Static catalog information (always available, like the Grid3
  /// catalog): CPU count of a site.
  [[nodiscard]] int catalog_cpus(SiteId site) const;

  [[nodiscard]] const MonitorConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t polls_attempted() const noexcept { return polls_; }
  [[nodiscard]] std::size_t polls_failed() const noexcept { return failed_; }

 private:
  void poll_site(SiteId site);
  [[nodiscard]] int perturb(int value);

  sim::Engine& engine_;
  grid::Grid& grid_;
  MonitorConfig config_;
  Rng rng_;
  std::unordered_map<SiteId, SiteSnapshot> published_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> pollers_;
  MetricRegistry* registry_ = nullptr;
  std::size_t polls_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace sphinx::monitor
