#pragma once
/// \file server.hpp
/// The SPHINX server: control process + scheduling modules.
///
/// The server hosts a Clarens endpoint with two methods -- a client
/// submits abstract DAGs via `sphinx.submit_dag` and streams tracker
/// reports via `sphinx.report` -- and runs a periodic *control process*
/// that moves DAGs and jobs through the scheduling automaton:
///
///   DAG:  received --reducer--> planning --all jobs done--> finished
///   job:  unplanned --planner--> planned --client reports--> submitted
///         --> running --> completed | cancelled/held --> unplanned again
///
/// The planner filters candidate sites by policy quotas (eq. 4) and the
/// feedback reliability rule, then delegates the choice to the configured
/// strategy, then resolves input replicas through the RLS ("clubbing all
/// its requests in a single call") and picks optimal transfer sources.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "core/algorithms.hpp"
#include "core/codec.hpp"
#include "core/state.hpp"
#include "core/warehouse.hpp"
#include "data/gridftp.hpp"
#include "data/rls.hpp"
#include "monitor/service.hpp"
#include "rpc/clarens.hpp"
#include "sim/engine.hpp"

namespace sphinx::core {

/// Static catalog entry the server knows about each site (the Grid3
/// catalog: always available, unlike monitoring data).
struct CatalogSite {
  SiteId id;
  std::string name;
  int cpus = 1;
};

/// Server configuration.
struct ServerConfig {
  std::string endpoint = "sphinx-server";
  Algorithm algorithm = Algorithm::kCompletionTime;
  bool use_feedback = true;   ///< apply the reliability filter
  bool use_policy = false;    ///< apply quota constraints (eq. 4)
  /// QoS: order planning by priority then earliest deadline first.  Off,
  /// requests are planned in pure submission order (priority ignored).
  bool use_qos_ordering = true;
  Duration sweep_period = 5.0;
  /// Planner step 4: when set, final outputs (outputs no other job in the
  /// DAG consumes) are copied to this site's persistent storage after the
  /// producing job completes.
  SiteId persistent_site;
  /// VOs authorized to talk to this server (GSI ACL).
  std::vector<std::string> allowed_vos = {"uscms", "atlas", "ivdgl"};
};

/// Counters for experiments and diagnostics.
struct ServerStats {
  std::size_t dags_received = 0;
  std::size_t plans_sent = 0;
  std::size_t replans = 0;         ///< plans for attempt > 1
  std::size_t reports_processed = 0;
  std::size_t jobs_reduced = 0;    ///< jobs eliminated by the DAG reducer
  std::size_t policy_rejections = 0;  ///< site filtered by quota at least once
};

class SphinxServer {
 public:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config);

  /// Reconstructs a server from a crashed instance's journal (paper:
  /// "easily recoverable from internal component failures").  In-flight
  /// client connections resume transparently because all state that
  /// matters lives in the warehouse.
  static Expected<std::unique_ptr<SphinxServer>> recover(
      rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
      data::ReplicaLocationService& rls, data::TransferService& transfers,
      const monitor::MonitoringService* monitoring, ServerConfig config,
      const db::Journal& journal);

  ~SphinxServer();
  SphinxServer(const SphinxServer&) = delete;
  SphinxServer& operator=(const SphinxServer&) = delete;

  /// Starts the control process.
  void start();
  /// Stops the control process (simulating an internal failure).
  void stop();

  /// One control-process sweep (also callable directly from tests).
  void sweep();

  [[nodiscard]] DataWarehouse& warehouse() noexcept { return *warehouse_; }
  [[nodiscard]] const DataWarehouse& warehouse() const noexcept {
    return *warehouse_;
  }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return config_.endpoint;
  }

  /// Sets a usage quota (administrative interface; also reachable over
  /// RPC via `sphinx.set_quota`).
  void set_quota(UserId user, SiteId site, const std::string& resource,
                 double limit);

 private:
  SphinxServer(rpc::MessageBus& bus, std::vector<CatalogSite> catalog,
               data::ReplicaLocationService& rls,
               data::TransferService& transfers,
               const monitor::MonitoringService* monitoring,
               ServerConfig config, std::unique_ptr<DataWarehouse> warehouse);

  void register_methods();
  /// Message-handling module: stores an incoming DAG.
  Expected<rpc::XrValue> handle_submit_dag(const std::vector<rpc::XrValue>& params,
                                           const rpc::Proxy& proxy);
  /// Message-handling module: folds in one tracker report.
  Expected<rpc::XrValue> handle_report(const std::vector<rpc::XrValue>& params,
                                       const rpc::Proxy& proxy);
  Expected<rpc::XrValue> handle_set_quota(const std::vector<rpc::XrValue>& params,
                                          const rpc::Proxy& proxy);

  /// DAG reducer module (paper section 3.2).
  void reduce_dag(const DagRecord& dag);
  /// Planner module: plans every ready job of a planning-state DAG.
  void plan_dag(const DagRecord& dag);
  /// Plans one job; returns false when no feasible site exists right now.
  bool plan_job(const DagRecord& dag, const JobRecord& job);
  /// Builds the strategy's view of the feasible sites.
  [[nodiscard]] std::vector<CandidateSite> feasible_sites(
      const DagRecord& dag, const JobRecord& job);
  void maybe_finish_dag(DagId dag_id);
  void send_plan(const DagRecord& dag, const ExecutionPlan& plan);

  rpc::MessageBus& bus_;
  std::vector<CatalogSite> catalog_;
  data::ReplicaLocationService& rls_;
  data::TransferService& transfers_;
  const monitor::MonitoringService* monitoring_;  ///< may be null
  ServerConfig config_;
  std::unique_ptr<DataWarehouse> warehouse_;
  std::unique_ptr<SchedulingAlgorithm> algorithm_;
  std::unique_ptr<rpc::ClarensService> service_;
  std::unique_ptr<rpc::ClarensClient> out_;  ///< for server -> client calls
  std::unique_ptr<sim::PeriodicProcess> control_;
  // Client endpoint and user for each DAG (rebuilt from the dags table on
  // recovery, so plan delivery resumes).
  std::unordered_map<DagId, std::string> dag_client_;
  std::unordered_map<DagId, UserId> dag_user_;
  std::unordered_map<SiteId, std::int64_t> sweep_outstanding_;
  ServerStats stats_;
  Logger log_{"sphinx-server"};
};

}  // namespace sphinx::core
