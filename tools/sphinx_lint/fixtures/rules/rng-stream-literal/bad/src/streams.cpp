/// \file streams.cpp
/// Fixture: stream labels the static registry cannot see.

#include <string>

namespace fixture {

struct Seeds {
  int stream(const std::string& label) const;
};

int opaque_label(const Seeds& seeds, const std::string& label) {
  return seeds.stream(label);  // non-literal: invisible to the registry
}

int family_without_slash(const Seeds& seeds, const std::string& name) {
  return seeds.stream("site" + name);  // family prefix must end in '/'
}

}  // namespace fixture
