#include "core/planner.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "data/replication.hpp"

namespace sphinx::core {

Planner::Planner(DataWarehouse& warehouse, std::vector<CatalogSite> catalog,
                 data::ReplicaLocationService& rls,
                 data::TransferService& transfers,
                 const monitor::MonitoringService* monitoring,
                 const ServerConfig& config, ServerStats& stats)
    : warehouse_(warehouse),
      catalog_(std::move(catalog)),
      rls_(rls),
      transfers_(transfers),
      monitoring_(monitoring),
      config_(config),
      stats_(stats),
      algorithm_(make_algorithm(config.algorithm)) {
  SPHINX_ASSERT(!catalog_.empty(), "planner needs a non-empty site catalog");
  // Strategy cursors are journaled soft state: pick up where a crashed
  // planner left off (no-op on a fresh warehouse -- "" restores nothing).
  saved_algorithm_state_ =
      warehouse_.scheduler_state("algorithm:" + algorithm_->name());
  algorithm_->restore_state(saved_algorithm_state_);
}

Planner::Outcome Planner::plan_dag(const DagRecord& dag, SimTime now) {
  Outcome outcome;
  const auto completed = warehouse_.completed_jobs(dag.id);
  for (const JobRecord& job : warehouse_.jobs_of_dag(dag.id)) {
    if (job.state != JobState::kUnplanned) continue;
    const auto parents = warehouse_.job_parents(job.id);
    const bool ready =
        std::all_of(parents.begin(), parents.end(),
                    [&](JobId p) { return completed.contains(p); });
    if (!ready || !plan_job(dag, job, now, outcome.plans)) {
      outcome.jobs_left_unplanned = true;
    }
  }
  if (std::string state = algorithm_->save_state();
      state != saved_algorithm_state_) {
    warehouse_.set_scheduler_state("algorithm:" + algorithm_->name(), state);
    saved_algorithm_state_ = std::move(state);
  }
  return outcome;
}

std::vector<CandidateSite> Planner::feasible_sites(const DagRecord& dag,
                                                   const JobRecord& job) {
  std::vector<CandidateSite> reliable;
  std::vector<CandidateSite> unreliable;  // kept for the starvation fallback
  bool policy_rejected_any = false;
  for (const CatalogSite& entry : catalog_) {
    // Policy filter (eq. 4): quota_i^s >= required_i^s for every resource.
    if (config_.use_policy) {
      const double cpu_quota =
          warehouse_.quota_remaining(dag.user, entry.id, "cpu_seconds");
      const double disk_quota =
          warehouse_.quota_remaining(dag.user, entry.id, "disk_bytes");
      if (cpu_quota < job.compute_time || disk_quota < job.output_bytes) {
        policy_rejected_any = true;
        continue;
      }
    }
    const SiteStats stats = warehouse_.site_stats(entry.id);

    CandidateSite site;
    site.id = entry.id;
    site.cpus = entry.cpus;
    // Eq. 1/2's "planned + unfinished" term, served by the warehouse's
    // live counter (maintained on job transitions, no table scan).
    site.outstanding = warehouse_.outstanding_on_site(entry.id);
    site.completed = stats.completed;
    site.cancelled = stats.cancelled;
    site.avg_completion = stats.avg_completion;
    site.samples = stats.samples;
    if (monitoring_ != nullptr) {
      if (const auto snap = monitoring_->snapshot(entry.id); snap.has_value()) {
        site.monitored = true;
        site.mon_queued = snap->queued;
        site.mon_running = snap->running;
      }
    }
    // Feedback filter: "sites having more number of cancelled jobs than
    // completed jobs are marked unreliable".
    if (config_.use_feedback && stats.cancelled > stats.completed) {
      unreliable.push_back(site);
    } else {
      reliable.push_back(site);
    }
  }
  if (policy_rejected_any) ++stats_.policy_rejections;
  // Starvation guard: if feedback flagged every policy-feasible site,
  // fall back to the full list rather than deadlock the DAG.
  if (reliable.empty()) return unreliable;
  return reliable;
}

bool Planner::plan_job(const DagRecord& dag, const JobRecord& job, SimTime now,
                       std::vector<ExecutionPlan>& plans) {
  // Input availability: every input must have at least one replica.
  const auto inputs = warehouse_.job_inputs(job.id);
  const auto located = rls_.locate_bulk(inputs);
  for (const auto& replicas : located) {
    if (replicas.empty()) return false;  // inputs not available yet
  }

  PlanningContext context;
  context.now = now;
  context.sites = feasible_sites(dag, job);
  const auto site = algorithm_->select(context);
  if (!site.has_value()) return false;  // no feasible site right now

  // Choose the optimal transfer source for each input (planner step 3).
  ExecutionPlan plan;
  plan.job = job.id;
  plan.dag = dag.id;
  plan.job_name = job.name;
  plan.site = *site;
  plan.compute_time = job.compute_time;
  plan.output = job.output;
  plan.output_bytes = job.output_bytes;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto choice = data::select_replica(located[i], *site, transfers_);
    SPHINX_ASSERT(choice.has_value(), "located input lost its replicas");
    plan.inputs.push_back(PlannedInput{inputs[i], choice->replica.site,
                                       choice->replica.size_bytes});
  }

  // QoS: deadline requests jump within-VO batch queues; explicit request
  // priority adds a smaller bounded nudge.
  if (config_.use_qos_ordering) {
    plan.batch_priority = std::clamp(dag.priority / 10.0, -0.4, 0.4) +
                          (dag.deadline < kNever ? 0.5 : 0.0);
  }

  // Planner step 4: final outputs (no consumer within the DAG) go to
  // persistent storage; intermediates stay on their execution site.
  if (config_.persistent_site.valid() &&
      warehouse_.job_children(job.id).empty()) {
    plan.persist_output = true;
    plan.persistent_site = config_.persistent_site;
  }

  warehouse_.set_job_planned(job.id, *site, now);
  plan.attempt = job.attempt + 1;
  if (config_.use_policy) {
    warehouse_.consume_quota(dag.user, *site, "cpu_seconds",
                             job.compute_time);
    warehouse_.consume_quota(dag.user, *site, "disk_bytes",
                             job.output_bytes);
  }
  ++stats_.plans_sent;
  if (plan.attempt > 1) ++stats_.replans;
  plans.push_back(std::move(plan));
  return true;
}

std::optional<ExecutionPlan> Planner::plan_speculative(const DagRecord& dag,
                                                       const JobRecord& job,
                                                       SimTime now) {
  SPHINX_ASSERT(job.state == JobState::kSubmitted ||
                    job.state == JobState::kRunning,
                "speculation replicates a live attempt");
  const auto inputs = warehouse_.job_inputs(job.id);
  const auto located = rls_.locate_bulk(inputs);
  for (const auto& replicas : located) {
    if (replicas.empty()) return std::nullopt;  // inputs lost since planning
  }

  // Same strategy, same immutable snapshot -- minus the site the suspect
  // attempt already occupies.  Racing two replicas on one site would only
  // double the load that made the first one slow.
  PlanningContext context;
  context.now = now;
  context.sites = feasible_sites(dag, job);
  std::erase_if(context.sites,
                [&](const CandidateSite& s) { return s.id == job.site; });
  const auto site = algorithm_->select(context);
  if (!site.has_value()) return std::nullopt;

  ExecutionPlan plan;
  plan.job = job.id;
  plan.dag = dag.id;
  plan.job_name = job.name;
  plan.site = *site;
  plan.compute_time = job.compute_time;
  plan.output = job.output;
  plan.output_bytes = job.output_bytes;
  plan.speculative = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto choice = data::select_replica(located[i], *site, transfers_);
    SPHINX_ASSERT(choice.has_value(), "located input lost its replicas");
    plan.inputs.push_back(PlannedInput{inputs[i], choice->replica.site,
                                       choice->replica.size_bytes});
  }
  if (config_.use_qos_ordering) {
    plan.batch_priority = std::clamp(dag.priority / 10.0, -0.4, 0.4) +
                          (dag.deadline < kNever ? 0.5 : 0.0);
  }
  if (config_.persistent_site.valid() &&
      warehouse_.job_children(job.id).empty()) {
    plan.persist_output = true;
    plan.persistent_site = config_.persistent_site;
  }

  warehouse_.speculate_job(job.id, *site, now);
  plan.attempt = job.attempt + 1;  // the replica's fresh attempt number
  if (config_.use_policy) {
    // The replica reserves its own quota; the loser's share is refunded
    // when the race settles.
    warehouse_.consume_quota(dag.user, *site, "cpu_seconds",
                             job.compute_time);
    warehouse_.consume_quota(dag.user, *site, "disk_bytes",
                             job.output_bytes);
  }
  ++stats_.plans_sent;
  return plan;
}

}  // namespace sphinx::core
