#include "chaos/oracle.hpp"

#include <charconv>
#include <string_view>
#include <vector>

namespace sphinx::chaos {
namespace {

std::vector<std::string_view> split_lines(const std::string& text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    lines.emplace_back(text.data() + pos, end - pos);
    pos = end + 1;
  }
  return lines;
}

OracleReport violate(std::string what) {
  OracleReport report;
  report.ok = false;
  report.violation = std::move(what);
  return report;
}

std::string snippet(std::string_view line) {
  constexpr std::size_t kMax = 160;
  std::string out(line.substr(0, kMax));
  if (line.size() > kMax) out += "...";
  return out;
}

/// Extracts the leading "t" timestamp of one trace line; false when the
/// line does not look like a trace event.
bool parse_time(std::string_view line, double& t) {
  constexpr std::string_view kPrefix = "{\"t\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  const char* begin = line.data() + kPrefix.size();
  const auto [ptr, ec] = std::from_chars(begin, line.data() + line.size(), t);
  return ec == std::errc{} && ptr != begin;
}

bool is_chaos_line(std::string_view line) {
  return line.find("\"kind\":\"server_crash\"") != std::string_view::npos ||
         line.find("\"kind\":\"server_recovery\"") != std::string_view::npos;
}

bool is_ctrl_line(std::string_view line) {
  return line.find("\"kind\":\"lease_granted\"") != std::string_view::npos ||
         line.find("\"kind\":\"lease_expired\"") != std::string_view::npos ||
         line.find("\"kind\":\"lease_fenced\"") != std::string_view::npos ||
         line.find("\"kind\":\"shard_adopted\"") != std::string_view::npos ||
         line.find("\"src\":\"ctrl/") != std::string_view::npos ||
         line.find("\"subj\":\"ctrl/") != std::string_view::npos;
}

OracleReport diff_traces(const std::string& chaotic_trace,
                         const std::string& baseline_trace) {
  if (chaotic_trace == baseline_trace) return OracleReport{};
  const auto a = split_lines(chaotic_trace);
  const auto b = split_lines(baseline_trace);
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return violate("trace diverged at line " + std::to_string(i + 1) +
                 ": recovered=\"" + snippet(i < a.size() ? a[i] : "<end>") +
                 "\" baseline=\"" + snippet(i < b.size() ? b[i] : "<end>") +
                 "\"");
}

}  // namespace

std::string strip_chaos_events(const std::string& trace_jsonl) {
  std::string out;
  out.reserve(trace_jsonl.size());
  for (const std::string_view line : split_lines(trace_jsonl)) {
    if (line.empty() || is_chaos_line(line)) continue;
    out.append(line);
    out += '\n';
  }
  return out;
}

std::string strip_failover_events(const std::string& trace_jsonl) {
  std::string out;
  out.reserve(trace_jsonl.size());
  for (const std::string_view line : split_lines(trace_jsonl)) {
    if (line.empty() || is_chaos_line(line) || is_ctrl_line(line)) continue;
    out.append(line);
    out += '\n';
  }
  return out;
}

OracleReport check_run_invariants(const RunArtifacts& run) {
  if (!run.invariant_violation.empty()) {
    return violate("warehouse invariant sweep failed: " +
                   run.invariant_violation);
  }
  if (run.dags_finished != run.dags_total) {
    return violate("lost work: " + std::to_string(run.dags_finished) + "/" +
                   std::to_string(run.dags_total) +
                   " DAGs reached a terminal state");
  }
  double prev = -1.0;
  std::size_t index = 0;
  for (const std::string_view line : split_lines(run.trace_jsonl)) {
    ++index;
    if (line.empty()) continue;
    double t = 0.0;
    if (!parse_time(line, t)) {
      return violate("trace line " + std::to_string(index) +
                     " has no timestamp: " + snippet(line));
    }
    if (t < prev) {
      return violate("sim time went backwards at trace line " +
                     std::to_string(index) + ": " + snippet(line));
    }
    prev = t;
  }
  return OracleReport{};
}

OracleReport check_differential(const RunArtifacts& chaotic,
                                const RunArtifacts& baseline) {
  if (chaotic.journal_text != baseline.journal_text) {
    const auto a = split_lines(chaotic.journal_text);
    const auto b = split_lines(baseline.journal_text);
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
    return violate(
        "terminal warehouse state diverged at journal record " +
        std::to_string(i + 1) + ": recovered=\"" +
        snippet(i < a.size() ? a[i] : "<end>") + "\" baseline=\"" +
        snippet(i < b.size() ? b[i] : "<end>") + "\"");
  }
  return diff_traces(strip_chaos_events(chaotic.trace_jsonl),
                     strip_chaos_events(baseline.trace_jsonl));
}

OracleReport check_failover_differential(const RunArtifacts& chaotic,
                                         const RunArtifacts& baseline) {
  if (chaotic.journal_text != baseline.journal_text) {
    const auto a = split_lines(chaotic.journal_text);
    const auto b = split_lines(baseline.journal_text);
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
    return violate(
        "terminal warehouse state diverged at journal record " +
        std::to_string(i + 1) + ": recovered=\"" +
        snippet(i < a.size() ? a[i] : "<end>") + "\" baseline=\"" +
        snippet(i < b.size() ? b[i] : "<end>") + "\"");
  }
  return diff_traces(strip_failover_events(chaotic.trace_jsonl),
                     strip_failover_events(baseline.trace_jsonl));
}

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace sphinx::chaos
