#include "db/table.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace sphinx::db {
namespace {

/// Index key: type tag + canonical text, so 1 (int) != "1" (text).
std::string index_key(const Value& v) {
  return std::string(to_string(v.type())) + ":" + v.to_string();
}

}  // namespace

Schema::Schema(std::initializer_list<Column> cols)
    : Schema(std::vector<Column>(cols.begin(), cols.end())) {}

Schema::Schema(std::vector<Column> cols) : columns_(std::move(cols)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
  SPHINX_ASSERT(by_name_.size() == columns_.size(),
                "duplicate column name in schema");
}

std::size_t Schema::index_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  SPHINX_ASSERT(it != by_name_.end(), "unknown column: " + name);
  return it->second;
}

bool Schema::has(const std::string& name) const noexcept {
  return by_name_.contains(name);
}

bool Schema::accepts(const std::vector<Value>& row) const noexcept {
  if (row.size() != columns_.size()) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!accepts_cell(i, row[i])) return false;
  }
  return true;
}

bool Schema::accepts_cell(std::size_t i, const Value& v) const noexcept {
  if (i >= columns_.size()) return false;
  if (columns_[i].type == ValueType::kNull) return true;  // untyped column
  if (v.is_null()) return true;                           // null always ok
  if (v.type() == ValueType::kInt && columns_[i].type == ValueType::kReal) {
    return true;  // ints widen to reals
  }
  return v.type() == columns_[i].type;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  for (const Column& column : schema_.columns()) {
    if (column.indexed) create_index(column.name);
  }
}

RowId Table::insert(std::vector<Value> cells) {
  SPHINX_ASSERT(schema_.accepts(cells),
                "row does not match schema of table " + name_);
  const RowId id = next_id_++;
  const auto [it, ok] = rows_.emplace(id, Row{id, std::move(cells)});
  SPHINX_ASSERT(ok, "duplicate row id");
  index_insert(it->second);
  if (observer_ != nullptr) observer_->on_insert(name_, id, it->second.cells);
  return id;
}

void Table::insert_with_id(RowId id, std::vector<Value> cells) {
  SPHINX_ASSERT(id != kInvalidRow, "invalid row id in replay");
  SPHINX_ASSERT(schema_.accepts(cells),
                "row does not match schema of table " + name_);
  SPHINX_ASSERT(!rows_.contains(id), "row id already present in replay");
  next_id_ = std::max(next_id_, id + 1);
  const auto [it, ok] = rows_.emplace(id, Row{id, std::move(cells)});
  SPHINX_ASSERT(ok, "duplicate row id");
  index_insert(it->second);
  if (observer_ != nullptr) observer_->on_insert(name_, id, it->second.cells);
}

bool Table::update(RowId id, const std::string& column, Value value) {
  return update(id, schema_.index_of(column), std::move(value));
}

bool Table::update(RowId id, std::size_t column, Value value) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  SPHINX_ASSERT(column < schema_.size(), "column index out of range");
  SPHINX_ASSERT(schema_.accepts_cell(column, value),
                "cell type does not match schema of table " + name_);
  index_erase(it->second);
  it->second.cells[column] = std::move(value);
  index_insert(it->second);
  if (observer_ != nullptr) {
    observer_->on_update(name_, id, column, it->second.cells[column]);
  }
  return true;
}

bool Table::erase(RowId id) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  index_erase(it->second);
  rows_.erase(it);
  if (observer_ != nullptr) observer_->on_erase(name_, id);
  return true;
}

const Row* Table::find(RowId id) const {
  const auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

const Value& Table::get(RowId id, const std::string& column) const {
  const Row* row = find(id);
  SPHINX_ASSERT(row != nullptr,
                "row " + std::to_string(id) + " missing in table " + name_);
  return row->cells[schema_.index_of(column)];
}

void Table::create_index(const std::string& column) {
  const std::size_t col = schema_.index_of(column);
  if (indexes_.contains(col)) return;
  auto& index = indexes_[col];
  for (const auto& [id, row] : rows_) {
    index[index_key(row.cells[col])].push_back(id);
  }
}

std::vector<RowId> Table::find_by(const std::string& column,
                                  const Value& value) const {
  const std::size_t col = schema_.index_of(column);
  if (const auto it = indexes_.find(col); it != indexes_.end()) {
    const auto bucket = it->second.find(index_key(value));
    if (bucket == it->second.end()) return {};
    return bucket->second;  // maintained in id order
  }
  note_full_scan(col);
  std::vector<RowId> out;
  for (const auto& [id, row] : rows_) {
    if (row.cells[col] == value) out.push_back(id);
  }
  return out;
}

const Row* Table::find_first(const std::string& column,
                             const Value& value) const {
  const std::size_t col = schema_.index_of(column);
  if (const auto it = indexes_.find(col); it != indexes_.end()) {
    const auto bucket = it->second.find(index_key(value));
    if (bucket == it->second.end() || bucket->second.empty()) return nullptr;
    return find(bucket->second.front());
  }
  note_full_scan(col);
  for (const auto& [id, row] : rows_) {
    if (row.cells[col] == value) return &row;
  }
  return nullptr;
}

void Table::note_full_scan(std::size_t column) const {
#if SPHINX_CONTRACTS_ENABLED
  // Debug-build contract on query plans: an equality query that cannot
  // use an index is almost always a missing `indexed` declaration in the
  // schema.  Count every fallback and log the first one per column.
  ++full_scans_;
  if (scan_logged_.size() < schema_.size()) scan_logged_.resize(schema_.size());
  if (!scan_logged_[column]) {
    scan_logged_[column] = true;
    const Logger log{"db"};
    log.warn("full-scan query on ", name_, ".", schema_.at(column).name,
             " (no index declared for this column)");
  }
#else
  (void)column;
#endif
}

std::vector<RowId> Table::select(
    const std::function<bool(const Row&)>& pred) const {
  std::vector<RowId> out;
  for (const auto& [id, row] : rows_) {
    if (pred(row)) out.push_back(id);
  }
  return out;
}

void Table::for_each(const std::function<void(const Row&)>& fn) const {
  for (const auto& [id, row] : rows_) fn(row);
}

std::size_t Table::count_by(const std::string& column,
                            const Value& value) const {
  return find_by(column, value).size();
}

void Table::check_invariants() const {
#if SPHINX_CONTRACTS_ENABLED
  for (const auto& [id, row] : rows_) {
    SPHINX_INVARIANT(id != kInvalidRow, "table " + name_ + " holds row id 0");
    SPHINX_INVARIANT(id == row.id,
                     "row key/id mismatch in table " + name_);
    SPHINX_INVARIANT(id < next_id_,
                     "row id beyond allocation cursor in table " + name_);
    SPHINX_INVARIANT(schema_.accepts(row.cells),
                     "row violates schema of table " + name_);
  }
  for (const auto& [col, index] : indexes_) {
    std::size_t covered = 0;
    for (const auto& [key, ids] : index) {
      SPHINX_INVARIANT(!ids.empty(),
                       "empty index bucket in table " + name_);
      SPHINX_INVARIANT(std::adjacent_find(ids.begin(), ids.end(),
                                          std::greater_equal<RowId>()) ==
                           ids.end(),
                       "index bucket not strictly id-ordered in table " +
                           name_);
      for (const RowId id : ids) {
        const auto it = rows_.find(id);
        SPHINX_INVARIANT(it != rows_.end(),
                         "index names a missing row in table " + name_);
        SPHINX_INVARIANT(index_key(it->second.cells[col]) == key,
                         "index bucket key mismatch in table " + name_);
      }
      covered += ids.size();
    }
    SPHINX_INVARIANT(covered == rows_.size(),
                     "index does not cover table " + name_);
  }
#endif
}

void Table::restore_next_id(RowId next_id) {
  SPHINX_PRECONDITION(next_id >= next_id_,
                      "allocation cursor cannot move backwards");
  next_id_ = next_id;
}

void Table::index_insert(const Row& row) {
  for (auto& [col, index] : indexes_) {
    auto& ids = index[index_key(row.cells[col])];
    // Buckets stay id-ordered (not touch-ordered): query order must be
    // derivable from table state so a snapshot-restored table iterates
    // identically to the live one.  Inserts allocate increasing ids, so
    // the common case is an O(1) append; only an update that moves an
    // old row between buckets pays the ordered insert.
    if (ids.empty() || ids.back() < row.id) {
      ids.push_back(row.id);
      continue;
    }
    ids.insert(std::upper_bound(ids.begin(), ids.end(), row.id), row.id);
  }
}

void Table::index_erase(const Row& row) {
  for (auto& [col, index] : indexes_) {
    const auto it = index.find(index_key(row.cells[col]));
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), row.id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

}  // namespace sphinx::db
